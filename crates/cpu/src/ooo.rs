//! The out-of-order processor generator.
//!
//! One parametric generator covers the paper's three OoO designs:
//!
//! * **SimpleOoO** — `rob_size = 4`, 1-wide, no exceptions (+ one of the
//!   five §7.2 defence policies),
//! * **SuperOoO** (Ridecore stand-in) — `rob_size = 8`, 2-wide
//!   fetch/commit,
//! * **BigOoO** (BOOM stand-in) — exception semantics enabled, so
//!   mis-speculation arises from *three* sources: branch misprediction,
//!   misaligned-access faults and illegal-access faults (§7.1.4).
//!
//! # Microarchitecture
//!
//! A merged fetch/dispatch stage allocates into a circular ROB whose
//! entries carry operands Tomasulo-style (value or producer tag); a single
//! ALU and a single memory port execute the oldest ready instruction;
//! results broadcast on completion; a one-deep commit stage retires in
//! order, resolving branches and exceptions *at commit* with a full-pipeline
//! flush. Branch prediction is always-not-taken, so every taken branch is a
//! misprediction with a speculation window until its commit — the Spectre
//! source. Loads execute (and, by default, forward) speculatively: the
//! insecure baseline. Crucially, execution units still fire during the
//! flush cycle, so a transient load's memory-bus transaction is observable
//! even though the instruction never commits — exactly the transient side
//! effect the contracts police.
//!
//! The defence policies modify only the issue/forwarding rules (§7.2):
//! `NoFwd*` suppress result broadcast until commit, `Delay*` hold loads
//! until they are the oldest in-flight instruction, and `DomSpectre` adds a
//! single-entry cache with a *blocking* memory port — speculative hits
//! complete invisibly, tainted misses hold the port (the speculative-
//! interference leak the paper cites as DoM's known vulnerability).

use csl_hdl::{Bit, Design, Init, Reg, Word};

use crate::config::{CpuConfig, Defense};
use crate::decode::{decode, Decoded};
use crate::memsys::{read_dmem, read_imem, SecretMem, SharedMem};
use crate::pick::{onehot_encode, onehot_mux, pick_oldest, pick_oldest2, Grant};
use crate::ports::{CommitPort, CpuPorts};
use crate::single_cycle::resolve_load_hdl;

/// Registers of one ROB entry.
struct EntryRegs {
    busy: Reg,
    op: Reg,
    rd: Reg,
    imm: Reg,
    pc: Reg,
    q1b: Reg,
    q1t: Reg,
    v1: Reg,
    q2b: Reg,
    q2t: Reg,
    v2: Reg,
    done: Reg,
    value: Reg,
    mem_word: Reg,
    exc: Reg,
    taken: Reg,
    tainted: Reg,
}

/// A value broadcast channel (completion or commit).
#[derive(Clone)]
struct Bcast {
    valid: Bit,
    tag: Word,
    value: Word,
}

/// One commit-stage slot's registers.
struct CpRegs {
    valid: Reg,
    tag: Reg,
    pc: Reg,
    rd: Reg,
    value: Reg,
    mem_word: Reg,
    exc: Reg,
    taken: Reg,
    is_ld: Reg,
    is_bnz: Reg,
    has_rd: Reg,
    target: Reg,
    /// Present only with the multiply extension: the retiring instruction's
    /// operand values and MUL flag, for constant-time FU observations.
    mul: Option<(Reg, Reg, Reg)>,
}

/// Builds an out-of-order core under the scope `name`.
///
/// `enable` gates every register (the shadow pause); `stall_fetch`
/// suppresses dispatch of new instructions (shadow drain support).
pub fn build_ooo(
    d: &mut Design,
    cfg: &CpuConfig,
    name: &str,
    shared: &SharedMem,
    secret: &SecretMem,
    enable: Bit,
    stall_fetch: Bit,
) -> CpuPorts {
    cfg.validate();
    let isa = &cfg.isa;
    let r = cfg.rob_size;
    let rw = cfg.rob_bits();
    let xlen = isa.xlen;
    let db = isa.dmem_bits();
    let cntw = cfg.count_bits();
    let width = cfg.width;
    let dom = cfg.defense == Defense::DomSpectre;

    d.push_scope(name);
    let mark = d.reg_mark();

    // ---- state ---------------------------------------------------------
    let pc = d.reg("pc", isa.pc_bits(), Init::Zero);
    let rf: Vec<Reg> = (0..isa.nregs)
        .map(|i| d.reg(&format!("rf[{i}]"), xlen, Init::Zero))
        .collect();
    let rs_busy: Vec<Reg> = (0..isa.nregs)
        .map(|i| d.reg(&format!("rs_busy[{i}]"), 1, Init::Zero))
        .collect();
    let rs_tag: Vec<Reg> = (0..isa.nregs)
        .map(|i| d.reg(&format!("rs_tag[{i}]"), rw, Init::Zero))
        .collect();
    let head = d.reg("head", rw, Init::Zero);
    let count = d.reg("count", cntw, Init::Zero);
    let entries: Vec<EntryRegs> = (0..r)
        .map(|e| {
            d.push_scope(format!("rob{e}"));
            let er = EntryRegs {
                busy: d.reg("busy", 1, Init::Zero),
                op: d.reg("op", 3, Init::Zero),
                rd: d.reg("rd", isa.reg_bits(), Init::Zero),
                imm: d.reg("imm", isa.imm_bits(), Init::Zero),
                pc: d.reg("pc", isa.pc_bits(), Init::Zero),
                q1b: d.reg("q1b", 1, Init::Zero),
                q1t: d.reg("q1t", rw, Init::Zero),
                v1: d.reg("v1", xlen, Init::Zero),
                q2b: d.reg("q2b", 1, Init::Zero),
                q2t: d.reg("q2t", rw, Init::Zero),
                v2: d.reg("v2", xlen, Init::Zero),
                done: d.reg("done", 1, Init::Zero),
                value: d.reg("value", xlen, Init::Zero),
                mem_word: d.reg("mem_word", db, Init::Zero),
                exc: d.reg("exc", 2, Init::Zero),
                taken: d.reg("taken", 1, Init::Zero),
                tainted: d.reg("tainted", 1, Init::Zero),
            };
            d.pop_scope();
            er
        })
        .collect();
    let cps: Vec<CpRegs> = (0..width)
        .map(|i| {
            d.push_scope(format!("cp{i}"));
            let cp = CpRegs {
                valid: d.reg("valid", 1, Init::Zero),
                tag: d.reg("tag", rw, Init::Zero),
                pc: d.reg("pc", isa.pc_bits(), Init::Zero),
                rd: d.reg("rd", isa.reg_bits(), Init::Zero),
                value: d.reg("value", xlen, Init::Zero),
                mem_word: d.reg("mem_word", db, Init::Zero),
                exc: d.reg("exc", 2, Init::Zero),
                taken: d.reg("taken", 1, Init::Zero),
                is_ld: d.reg("is_ld", 1, Init::Zero),
                is_bnz: d.reg("is_bnz", 1, Init::Zero),
                has_rd: d.reg("has_rd", 1, Init::Zero),
                target: d.reg("target", isa.pc_bits(), Init::Zero),
                mul: isa.enable_mul.then(|| {
                    (
                        d.reg("is_mul", 1, Init::Zero),
                        d.reg("mul_a", xlen, Init::Zero),
                        d.reg("mul_b", xlen, Init::Zero),
                    )
                }),
            };
            d.pop_scope();
            cp
        })
        .collect();
    // DoM-only state.
    let cache_valid = dom.then(|| d.reg("cache.valid", 1, Init::Zero));
    let cache_tag = dom.then(|| d.reg("cache.tag", db, Init::Zero));
    let cache_data = dom.then(|| d.reg("cache.data", xlen, Init::Zero));
    let port_busy = dom.then(|| d.reg("port.busy", 1, Init::Zero));
    let port_tag = dom.then(|| d.reg("port.tag", rw, Init::Zero));
    let port_ctr = dom.then(|| d.reg("port.ctr", 2, Init::Zero));

    // ---- convenient field views -----------------------------------------
    let e_busy: Vec<Bit> = entries.iter().map(|e| e.busy.q().bit(0)).collect();
    let e_done: Vec<Bit> = entries.iter().map(|e| e.done.q().bit(0)).collect();
    let e_op: Vec<Word> = entries.iter().map(|e| e.op.q()).collect();
    let e_v1: Vec<Word> = entries.iter().map(|e| e.v1.q()).collect();
    let e_v2: Vec<Word> = entries.iter().map(|e| e.v2.q()).collect();
    let e_q1b: Vec<Bit> = entries.iter().map(|e| e.q1b.q().bit(0)).collect();
    let e_q2b: Vec<Bit> = entries.iter().map(|e| e.q2b.q().bit(0)).collect();
    let e_tainted: Vec<Bit> = entries.iter().map(|e| e.tainted.q().bit(0)).collect();
    let e_is_ld: Vec<Bit> = e_op
        .iter()
        .map(|op| d.eq_const(op, csl_isa::opcode::LD as u64))
        .collect();
    let e_is_bnz: Vec<Bit> = e_op
        .iter()
        .map(|op| d.eq_const(op, csl_isa::opcode::BNZ as u64))
        .collect();
    let e_is_li: Vec<Bit> = e_op
        .iter()
        .map(|op| d.eq_const(op, csl_isa::opcode::LI as u64))
        .collect();
    let e_is_add: Vec<Bit> = e_op
        .iter()
        .map(|op| d.eq_const(op, csl_isa::opcode::ADD as u64))
        .collect();
    let e_is_mul: Vec<Bit> = if isa.enable_mul {
        e_op.iter()
            .map(|op| d.eq_const(op, csl_isa::opcode::MUL as u64))
            .collect()
    } else {
        vec![Bit::FALSE; r]
    };
    let e_has_rd: Vec<Bit> = (0..r)
        .map(|e| d.any(&[e_is_li[e], e_is_add[e], e_is_ld[e], e_is_mul[e]]))
        .collect();
    let e_at_head: Vec<Bit> = (0..r).map(|e| d.eq_const(&head.q(), e as u64)).collect();

    // ---- commit stage ----------------------------------------------------
    let cp_valid: Vec<Bit> = cps.iter().map(|c| c.valid.q().bit(0)).collect();
    let any_cp_valid = d.any(&cp_valid);
    let cp_redirect: Vec<Bit> = cps
        .iter()
        .map(|c| {
            let br = d.and_bit(c.is_bnz.q().bit(0), c.taken.q().bit(0));
            let exc_nz = {
                let z = d.is_zero(&c.exc.q());
                z.not()
            };
            let redir = d.or_bit(br, exc_nz);
            d.and_bit(c.valid.q().bit(0), redir)
        })
        .collect();
    let flush = d.any(&cp_redirect);
    // Redirect PC: oldest redirecting slot wins (younger slot is only valid
    // if the older one does not redirect, so at most one fires).
    let trap = d.lit(isa.pc_bits(), 0);
    let mut redirect_pc = trap.clone();
    for (i, c) in cps.iter().enumerate().rev() {
        let exc_nz = {
            let z = d.is_zero(&c.exc.q());
            z.not()
        };
        let tgt = d.mux(exc_nz, &trap, &c.target.q());
        redirect_pc = d.mux(cp_redirect[i], &tgt, &redirect_pc);
    }
    // Register-file writes and commit broadcasts.
    let commit_writes: Vec<Bit> = cps
        .iter()
        .map(|c| {
            let exc_z = d.is_zero(&c.exc.q());
            d.all(&[c.valid.q().bit(0), c.has_rd.q().bit(0), exc_z])
        })
        .collect();
    let mut bcasts: Vec<Bcast> = cps
        .iter()
        .zip(&commit_writes)
        .map(|(c, &w)| Bcast {
            valid: w,
            tag: c.tag.q(),
            value: c.value.q(),
        })
        .collect();

    // ---- execute: ALU(s) ---------------------------------------------------
    let alu_ready: Vec<Bit> = (0..r)
        .map(|e| {
            let srcs_ok = d.and_bit(e_q1b[e].not(), e_q2b[e].not());
            let alu_class = e_is_ld[e].not();
            d.all(&[e_busy[e], e_done[e].not(), alu_class, srcs_ok])
        })
        .collect();
    let alu_grants: Vec<Grant> = if width == 2 {
        let (g1, g2) = pick_oldest2(d, &alu_ready, &head.q());
        vec![g1, g2]
    } else {
        vec![pick_oldest(d, &alu_ready, &head.q())]
    };
    struct AluResult {
        grant: Grant,
        value: Word,
        taken: Bit,
    }
    let alu_results: Vec<AluResult> = alu_grants
        .into_iter()
        .map(|grant| {
            let v1 = onehot_mux(d, &grant.onehot, &e_v1);
            let v2 = onehot_mux(d, &grant.onehot, &e_v2);
            let imm = {
                let imms: Vec<Word> = entries.iter().map(|e| e.imm.q()).collect();
                onehot_mux(d, &grant.onehot, &imms)
            };
            let is_li = onehot_mux_bit(d, &grant.onehot, &e_is_li);
            let is_add = onehot_mux_bit(d, &grant.onehot, &e_is_add);
            let sum = d.add(&v1, &v2);
            let imm_x = d.resize(&imm, xlen);
            let zero_x = d.lit(xlen, 0);
            let mut value = d.mux(is_li, &imm_x, &zero_x);
            value = d.mux(is_add, &sum, &value);
            if isa.enable_mul {
                let is_mul = onehot_mux_bit(d, &grant.onehot, &e_is_mul);
                let prod = d.mul(&v1, &v2);
                value = d.mux(is_mul, &prod, &value);
            }
            let taken = {
                let z = d.is_zero(&v1);
                z.not()
            };
            AluResult {
                grant,
                value,
                taken,
            }
        })
        .collect();
    for ar in &alu_results {
        bcasts.push(Bcast {
            valid: ar.grant.any,
            tag: onehot_encode(d, &ar.grant.onehot, rw),
            value: ar.value.clone(),
        });
    }

    // ---- execute: memory -----------------------------------------------------
    // Per-entry load-issue permission, per the defence policy (§7.2).
    let oldest_inflight: Vec<Bit> = (0..r)
        .map(|e| d.and_bit(e_at_head[e], any_cp_valid.not()))
        .collect();
    let issue_ok: Vec<Bit> = (0..r)
        .map(|e| match cfg.defense {
            Defense::None | Defense::NoFwdFuturistic | Defense::NoFwdSpectre => Bit::TRUE,
            Defense::DelayFuturistic => oldest_inflight[e],
            Defense::DelaySpectre => d.or_bit(e_tainted[e].not(), oldest_inflight[e]),
            // DoM always lets loads reach the port; the miss path is gated
            // inside the port logic instead.
            Defense::DomSpectre => Bit::TRUE,
        })
        .collect();
    let ld_ready: Vec<Bit> = (0..r)
        .map(|e| {
            d.all(&[
                e_busy[e],
                e_done[e].not(),
                e_is_ld[e],
                e_q1b[e].not(),
                issue_ok[e],
            ])
        })
        .collect();

    // Load completion signals, filled by one of the two memory models.
    let ld_done_here: Vec<Bit>;
    let ld_value: Word;
    let ld_word: Word;
    let ld_exc: Word;
    let bus_valid_raw: Bit;
    let bus_addr_raw: Word;
    let ld_bcast_tag: Word;
    let ld_bcast_valid_raw: Bit;
    let exec_fault_raw: Word;

    if !dom {
        // Simple model: the granted load completes combinationally.
        let grant = pick_oldest(d, &ld_ready, &head.q());
        let v1 = onehot_mux(d, &grant.onehot, &e_v1);
        let (word, exc) = resolve_load_hdl(d, isa, &v1);
        let data = read_dmem(d, shared, secret, &word);
        ld_done_here = grant.onehot.clone();
        ld_value = data;
        ld_word = word.clone();
        ld_exc = exc;
        bus_valid_raw = grant.any;
        bus_addr_raw = word;
        ld_bcast_tag = onehot_encode(d, &grant.onehot, rw);
        exec_fault_raw = {
            let zero_e = d.lit(2, 0);
            d.mux(grant.any, &ld_exc, &zero_e)
        };
        // Forwarding policy: NoFwd* suppress the completion broadcast; the
        // value reaches consumers only through the commit broadcast.
        let tainted_pick = onehot_mux_bit(d, &grant.onehot, &e_tainted);
        ld_bcast_valid_raw = match cfg.defense {
            Defense::NoFwdFuturistic => Bit::FALSE,
            Defense::NoFwdSpectre => d.and_bit(grant.any, tainted_pick.not()),
            _ => grant.any,
        };
    } else {
        // DoM model: a blocking single-load port in front of a one-entry
        // cache. Grabbing is registered; hits complete in one active cycle
        // with no bus transaction; allowed misses put the address on the
        // bus and fill for three cycles; tainted misses hold the port.
        let pbusy = port_busy.as_ref().unwrap().q().bit(0);
        let ptag = port_tag.as_ref().unwrap().q();
        let pctr = port_ctr.as_ref().unwrap().q();
        let cvalid = cache_valid.as_ref().unwrap().q().bit(0);
        let ctag = cache_tag.as_ref().unwrap().q();
        let cdata = cache_data.as_ref().unwrap().q();

        let port_onehot: Vec<Bit> = (0..r)
            .map(|e| {
                let here = d.eq_const(&ptag, e as u64);
                d.and_bit(pbusy, here)
            })
            .collect();
        let v1p = onehot_mux(d, &port_onehot, &e_v1);
        let (word, exc) = resolve_load_hdl(d, isa, &v1p);
        let hit = {
            let same = d.eq(&ctag, &word);
            d.and_bit(cvalid, same)
        };
        let tainted_p = onehot_mux_bit(d, &port_onehot, &e_tainted);
        let oldest_p = onehot_mux_bit(d, &port_onehot, &oldest_inflight);
        let miss_allowed = d.or_bit(tainted_p.not(), oldest_p);
        let miss = hit.not();
        let ctr_zero = d.is_zero(&pctr);
        let fill_start = d.all(&[pbusy, miss, miss_allowed, ctr_zero]);
        let filling = d.and_bit(pbusy, ctr_zero.not());
        let fill_done = {
            let at2 = d.eq_const(&pctr, 2);
            d.and_bit(pbusy, at2)
        };
        let mem_data = read_dmem(d, shared, secret, &word);
        let complete = {
            let h = d.and_bit(pbusy, hit);
            d.or_bit(h, fill_done)
        };
        ld_done_here = port_onehot
            .iter()
            .map(|&oh| d.and_bit(oh, complete))
            .collect();
        ld_value = d.mux(hit, &cdata, &mem_data);
        ld_word = word.clone();
        ld_exc = exc; // zero: DoM configs are exception-free
        bus_valid_raw = fill_start;
        bus_addr_raw = word.clone();
        ld_bcast_tag = ptag.clone();
        ld_bcast_valid_raw = complete;
        exec_fault_raw = d.lit(2, 0);

        // Port grab: when free, take the oldest ready un-ported load.
        let grab = pick_oldest(d, &ld_ready, &head.q());
        let grab_now = d.and_bit(pbusy.not(), grab.any);
        let grab_tag = onehot_encode(d, &grab.onehot, rw);
        let release = complete;
        let next_pbusy = {
            let stay = d.and_bit(pbusy, release.not());
            let started = d.or_bit(stay, grab_now);
            d.and_bit(started, flush.not())
        };
        d.set_next(port_busy.as_ref().unwrap(), Word::from_bit(next_pbusy));
        let next_ptag = d.mux(grab_now, &grab_tag, &ptag);
        d.set_next(port_tag.as_ref().unwrap(), next_ptag);
        let ctr1 = d.add_const(&pctr, 1);
        let zero2 = d.lit(2, 0);
        let one2 = d.lit(2, 1);
        let mut next_ctr = d.mux(filling, &ctr1, &pctr);
        next_ctr = d.mux(fill_start, &one2, &next_ctr);
        next_ctr = d.mux(release, &zero2, &next_ctr);
        next_ctr = d.mux(grab_now, &zero2, &next_ctr);
        let fl_ctr = d.mux(flush, &zero2, &next_ctr);
        d.set_next(port_ctr.as_ref().unwrap(), fl_ctr);
        // Cache fill on completed misses (bound-to-commit loads only, since
        // tainted misses never complete before squash).
        let next_cv = d.or_bit(cvalid, fill_done);
        d.set_next(cache_valid.as_ref().unwrap(), Word::from_bit(next_cv));
        let next_ct = d.mux(fill_done, &word, &ctag);
        d.set_next(cache_tag.as_ref().unwrap(), next_ct);
        let next_cd = d.mux(fill_done, &mem_data, &cdata);
        d.set_next(cache_data.as_ref().unwrap(), next_cd);
    }
    bcasts.push(Bcast {
        valid: ld_bcast_valid_raw,
        tag: ld_bcast_tag,
        value: ld_value.clone(),
    });

    // ---- dispatch ------------------------------------------------------------
    let tainted_base = {
        let brs: Vec<Bit> = (0..r).map(|e| d.and_bit(e_busy[e], e_is_bnz[e])).collect();
        d.any(&brs)
    };
    let tail = {
        let head_x = d.resize(&head.q(), cntw);
        let sum = d.add(&head_x, &count.q());
        d.resize(&sum, rw)
    };
    struct DispatchSlot {
        go: Bit,
        alloc: Word,
        dec: Decoded,
        pc: Word,
        tainted: Bit,
        q1b: Bit,
        q1t: Word,
        v1: Word,
        q2b: Bit,
        q2t: Word,
        v2: Word,
    }
    let mut slots: Vec<DispatchSlot> = Vec::new();
    for s in 0..width {
        let fetch_pc = if s == 0 {
            pc.q()
        } else {
            d.add_const(&pc.q(), s as u64)
        };
        let inst = read_imem(d, shared, &fetch_pc);
        let dec = decode(d, isa, &inst);
        let room = {
            // count + s < r
            let lim = d.lit(cntw, (r - s) as u64);
            d.ult(&count.q(), &lim)
        };
        let mut go = d.all(&[stall_fetch.not(), flush.not(), room]);
        if s > 0 {
            go = d.and_bit(go, slots[s - 1].go);
        }
        let alloc = if s == 0 {
            tail.clone()
        } else {
            d.add_const(&tail, s as u64)
        };
        let mut tainted = tainted_base;
        for prev in slots.iter().take(s) {
            tainted = d.or_bit(tainted, prev.dec.is_bnz);
        }
        // Source lookup for rs1/rs2: register file / register status / ROB
        // (respecting the forwarding policy), then this cycle's broadcasts,
        // then intra-group producers (which must win over stale broadcasts
        // that may reuse a freed ROB tag this very cycle).
        let views: Vec<DispatchSlotView> = slots
            .iter()
            .map(|sl| DispatchSlotView {
                go: sl.go,
                alloc: sl.alloc.clone(),
                rd: sl.dec.rd.clone(),
                has_rd: sl.dec.has_rd,
            })
            .collect();
        let resolve_src = |d: &mut Design, rs: &Word, uses: Bit| -> (Bit, Word, Word) {
            let (qb0, qt0, v0) = lookup_source(
                d, cfg, rs, uses, &rf, &rs_busy, &rs_tag, &entries, &e_busy, &e_done, &e_is_ld,
                &e_tainted,
            );
            let ((mut qb, mut qt), mut v) = resolve_operand(d, qb0, &qt0, &v0, &bcasts);
            for view in &views {
                let same = d.eq(&view.rd, rs);
                let hit = d.all(&[uses, view.go, view.has_rd, same]);
                qb = d.or_bit(qb, hit);
                qt = d.mux(hit, &view.alloc, &qt);
                let zero_v = d.lit(xlen, 0);
                v = d.mux(hit, &zero_v, &v);
            }
            (qb, qt, v)
        };
        let (q1b, q1t, v1) = resolve_src(d, &dec.rs1, dec.uses_rs1);
        let (q2b, q2t, v2) = resolve_src(d, &dec.rs2, dec.uses_rs2);
        slots.push(DispatchSlot {
            go,
            alloc,
            dec,
            pc: fetch_pc,
            tainted,
            q1b,
            q1t,
            v1,
            q2b,
            q2t,
            v2,
        });
    }

    // ---- commit-stage latch ----------------------------------------------------
    // Slot i latches ROB[head + i] when it is done and no older slot (this
    // cycle or in the commit stage) redirects.
    let mut latch: Vec<Bit> = Vec::new();
    let mut latch_idx: Vec<Word> = Vec::new();
    for i in 0..width {
        let idx = if i == 0 {
            head.q()
        } else {
            d.add_const(&head.q(), i as u64)
        };
        let oh: Vec<Bit> = (0..r).map(|e| d.eq_const(&idx, e as u64)).collect();
        let busy_i = onehot_mux_bit(d, &oh, &e_busy);
        let done_i = onehot_mux_bit(d, &oh, &e_done);
        let mut go = d.all(&[busy_i, done_i, flush.not()]);
        if i > 0 {
            // Older slot must also latch, and must not be a redirect.
            let older_oh: Vec<Bit> = (0..r)
                .map(|e| d.eq_const(&latch_idx[i - 1], e as u64))
                .collect();
            let older_bnz_taken = {
                let b = onehot_mux_bit(d, &older_oh, &e_is_bnz);
                let t: Vec<Bit> = entries.iter().map(|e| e.taken.q().bit(0)).collect();
                let tk = onehot_mux_bit(d, &older_oh, &t);
                d.and_bit(b, tk)
            };
            let older_exc = {
                let excs: Vec<Word> = entries.iter().map(|e| e.exc.q()).collect();
                let x = onehot_mux(d, &older_oh, &excs);
                let z = d.is_zero(&x);
                z.not()
            };
            let older_redirects = d.or_bit(older_bnz_taken, older_exc);
            go = d.all(&[go, latch[i - 1], older_redirects.not()]);
        }
        latch.push(go);
        latch_idx.push(idx);
    }
    for (i, cp) in cps.iter().enumerate() {
        let oh: Vec<Bit> = (0..r)
            .map(|e| d.eq_const(&latch_idx[i], e as u64))
            .collect();
        let field = |d: &mut Design, f: &dyn Fn(&EntryRegs) -> Word| -> Word {
            let ws: Vec<Word> = entries.iter().map(f).collect();
            onehot_mux(d, &oh, &ws)
        };
        d.set_next(&cp.valid, Word::from_bit(latch[i]));
        let tagw = latch_idx[i].clone();
        d.set_next(&cp.tag, tagw);
        let f_pc = field(d, &|e| e.pc.q());
        d.set_next(&cp.pc, f_pc);
        let f_rd = field(d, &|e| e.rd.q());
        d.set_next(&cp.rd, f_rd);
        let f_value = field(d, &|e| e.value.q());
        d.set_next(&cp.value, f_value);
        let f_word = field(d, &|e| e.mem_word.q());
        d.set_next(&cp.mem_word, f_word);
        let f_exc = field(d, &|e| e.exc.q());
        d.set_next(&cp.exc, f_exc);
        let f_taken = field(d, &|e| e.taken.q());
        d.set_next(&cp.taken, f_taken);
        let isld = onehot_mux_bit(d, &oh, &e_is_ld);
        d.set_next(&cp.is_ld, Word::from_bit(isld));
        let isbnz = onehot_mux_bit(d, &oh, &e_is_bnz);
        d.set_next(&cp.is_bnz, Word::from_bit(isbnz));
        let hasrd = onehot_mux_bit(d, &oh, &e_has_rd);
        d.set_next(&cp.has_rd, Word::from_bit(hasrd));
        let tgt = {
            let imms: Vec<Word> = entries.iter().map(|e| e.imm.q()).collect();
            let imm = onehot_mux(d, &oh, &imms);
            d.resize(&imm, isa.pc_bits())
        };
        d.set_next(&cp.target, tgt);
        if let Some((is_mul_r, a_r, b_r)) = &cp.mul {
            let ismul = onehot_mux_bit(d, &oh, &e_is_mul);
            d.set_next(is_mul_r, Word::from_bit(ismul));
            let f_v1 = field(d, &|e| e.v1.q());
            d.set_next(a_r, f_v1);
            let f_v2 = field(d, &|e| e.v2.q());
            d.set_next(b_r, f_v2);
        }
    }

    // ---- architectural state updates ---------------------------------------------
    // Register file: older commit slot first so the younger wins conflicts.
    for (ri, reg) in rf.iter().enumerate() {
        let mut nxt = reg.q();
        for (ci, cp) in cps.iter().enumerate() {
            let here = d.eq_const(&cp.rd.q(), ri as u64);
            let we = d.and_bit(commit_writes[ci], here);
            nxt = d.mux(we, &cp.value.q(), &nxt);
        }
        d.set_next(reg, nxt);
    }
    // Register status: set by dispatch (youngest wins), cleared by commit
    // of the matching producer, cleared wholesale on flush.
    for ri in 0..isa.nregs {
        let mut busy_n = rs_busy[ri].q().bit(0);
        let mut tag_n = rs_tag[ri].q();
        for (ci, cp) in cps.iter().enumerate() {
            let same_reg = d.eq_const(&cp.rd.q(), ri as u64);
            let same_tag = d.eq(&rs_tag[ri].q(), &cp.tag.q());
            let clear = d.all(&[commit_writes[ci], same_reg, same_tag]);
            busy_n = d.and_bit(busy_n, clear.not());
        }
        for slot in &slots {
            let here = d.eq_const(&slot.dec.rd, ri as u64);
            let set = d.all(&[slot.go, slot.dec.has_rd, here]);
            busy_n = d.or_bit(busy_n, set);
            tag_n = d.mux(set, &slot.alloc, &tag_n);
        }
        busy_n = d.and_bit(busy_n, flush.not());
        d.set_next(&rs_busy[ri], Word::from_bit(busy_n));
        d.set_next(&rs_tag[ri], tag_n);
    }

    // ---- pointer/counter updates ------------------------------------------------
    let dispatched = {
        let gos: Vec<Bit> = slots.iter().map(|s| s.go).collect();
        popcount(d, &gos, cntw)
    };
    let left = {
        let ls: Vec<Bit> = latch.clone();
        popcount(d, &ls, cntw)
    };
    let commits_now = {
        let vs: Vec<Bit> = cp_valid.clone();
        popcount(d, &vs, cntw)
    };
    let next_head = {
        let left_rw = d.resize(&left, rw);
        let h = d.add(&head.q(), &left_rw);
        let zero_h = d.lit(rw, 0);
        d.mux(flush, &zero_h, &h)
    };
    d.set_next(&head, next_head);
    let next_count = {
        let up = d.add(&count.q(), &dispatched);
        let dn = d.sub(&up, &left);
        let zero_c = d.lit(cntw, 0);
        d.mux(flush, &zero_c, &dn)
    };
    d.set_next(&count, next_count);
    let next_pc = {
        let adv = d.resize(&dispatched, isa.pc_bits());
        let p = d.add(&pc.q(), &adv);
        d.mux(flush, &redirect_pc, &p)
    };
    d.set_next(&pc, next_pc);

    // ---- ROB entry next-state -------------------------------------------------------
    for (e, er) in entries.iter().enumerate() {
        // Execution updates.
        let mut done_n = er.done.q().bit(0);
        let mut value_n = er.value.q();
        let mut taken_n = er.taken.q().bit(0);
        let mut word_n = er.mem_word.q();
        let mut exc_n = er.exc.q();
        for ar in &alu_results {
            let g = ar.grant.onehot[e];
            done_n = d.or_bit(done_n, g);
            value_n = d.mux(g, &ar.value, &value_n);
            let tk = d.and_bit(ar.taken, e_is_bnz[e]);
            let tk_sel = d.mux_bit(g, tk, taken_n);
            taken_n = tk_sel;
        }
        {
            let g = ld_done_here[e];
            done_n = d.or_bit(done_n, g);
            value_n = d.mux(g, &ld_value, &value_n);
            word_n = d.mux(g, &ld_word, &word_n);
            exc_n = d.mux(g, &ld_exc, &exc_n);
        }
        // Broadcast resolution on waiting operands.
        let (q1b_n, v1_n) = resolve_operand(d, er.q1b.q().bit(0), &er.q1t.q(), &er.v1.q(), &bcasts);
        let (q2b_n, v2_n) = resolve_operand(d, er.q2b.q().bit(0), &er.q2t.q(), &er.v2.q(), &bcasts);

        // Leaving (latched into the commit stage) or being allocated.
        let mut leave = Bit::FALSE;
        for i in 0..width {
            let here = d.eq_const(&latch_idx[i], e as u64);
            let l = d.and_bit(latch[i], here);
            leave = d.or_bit(leave, l);
        }
        let mut disp_here = Bit::FALSE;
        for slot in &slots {
            let here = d.eq_const(&slot.alloc, e as u64);
            let g = d.and_bit(slot.go, here);
            disp_here = d.or_bit(disp_here, g);
        }

        let busy_after = {
            let b = er.busy.q().bit(0);
            let stay = d.and_bit(b, leave.not());
            let set = d.or_bit(stay, disp_here);
            d.and_bit(set, flush.not())
        };
        d.set_next(&er.busy, Word::from_bit(busy_after));

        // Field updates: dispatch overrides execution/broadcast updates.
        let set_field = |d: &mut Design,
                         reg: &Reg,
                         updated: &Word,
                         new: &dyn Fn(&DispatchSlot, &mut Design) -> Word| {
            let mut v = updated.clone();
            for slot in &slots {
                let here = d.eq_const(&slot.alloc, e as u64);
                let g = d.and_bit(slot.go, here);
                let nv = new(slot, d);
                v = d.mux(g, &nv, &v);
            }
            d.set_next(reg, v);
        };
        set_field(d, &er.op, &er.op.q(), &|s, _| s.dec.op.clone());
        set_field(d, &er.rd, &er.rd.q(), &|s, _| s.dec.rd.clone());
        set_field(d, &er.imm, &er.imm.q(), &|s, _| s.dec.imm.clone());
        set_field(d, &er.pc, &er.pc.q(), &|s, _| s.pc.clone());
        set_field(d, &er.q1t, &q1b_n.1, &|s, _| s.q1t.clone());
        set_field(d, &er.v1, &v1_n, &|s, _| s.v1.clone());
        set_field(d, &er.q2t, &q2b_n.1, &|s, _| s.q2t.clone());
        set_field(d, &er.v2, &v2_n, &|s, _| s.v2.clone());
        set_field(d, &er.value, &value_n, &|_, d| d.lit(xlen, 0));
        set_field(d, &er.mem_word, &word_n, &|_, d| d.lit(db, 0));
        set_field(d, &er.exc, &exc_n, &|_, d| d.lit(2, 0));
        let taken_w = Word::from_bit(taken_n);
        set_field(d, &er.taken, &taken_w, &|_, d| d.lit(1, 0));
        let done_w = Word::from_bit(done_n);
        set_field(d, &er.done, &done_w, &|_, d| d.lit(1, 0));
        let tainted_w = er.tainted.q();
        set_field(d, &er.tainted, &tainted_w, &|s, _| {
            Word::from_bit(s.tainted)
        });
        let q1b_w = Word::from_bit(q1b_n.0);
        set_field(d, &er.q1b, &q1b_w, &|s, _| Word::from_bit(s.q1b));
        let q2b_w = Word::from_bit(q2b_n.0);
        set_field(d, &er.q2b, &q2b_w, &|s, _| Word::from_bit(s.q2b));
    }

    d.gate_regs_since(mark, enable);

    // ---- observation ports -----------------------------------------------------------
    let zero_x = d.lit(xlen, 0);
    let zero_a = d.lit(db, 0);
    let commits: Vec<CommitPort> = cps
        .iter()
        .enumerate()
        .map(|(i, cp)| {
            let valid = d.and_bit(cp_valid[i], enable);
            let exc_z = d.is_zero(&cp.exc.q());
            let load_ok = d.all(&[valid, cp.is_ld.q().bit(0), exc_z]);
            CommitPort {
                valid,
                pc: cp.pc.q(),
                writes_reg: d.and_bit(commit_writes[i], enable),
                value: {
                    let w = d.and_bit(commit_writes[i], enable);
                    d.mux(w, &cp.value.q(), &zero_x)
                },
                is_load: load_ok,
                mem_word: d.mux(load_ok, &cp.mem_word.q(), &zero_a),
                is_branch: d.and_bit(valid, cp.is_bnz.q().bit(0)),
                taken: d.all(&[valid, cp.is_bnz.q().bit(0), cp.taken.q().bit(0)]),
                exception: {
                    let zero_e = d.lit(2, 0);
                    d.mux(valid, &cp.exc.q(), &zero_e)
                },
                is_mul: cp
                    .mul
                    .as_ref()
                    .map(|(m, _, _)| {
                        let raw = m.q().bit(0);
                        d.and_bit(valid, raw)
                    })
                    .unwrap_or(Bit::FALSE),
                mul_a: cp
                    .mul
                    .as_ref()
                    .map(|(m, a, _)| {
                        let g = d.and_bit(valid, m.q().bit(0));
                        d.mux(g, &a.q(), &zero_x)
                    })
                    .unwrap_or_else(|| zero_x.clone()),
                mul_b: cp
                    .mul
                    .as_ref()
                    .map(|(m, _, b)| {
                        let g = d.and_bit(valid, m.q().bit(0));
                        d.mux(g, &b.q(), &zero_x)
                    })
                    .unwrap_or_else(|| zero_x.clone()),
            }
        })
        .collect();
    let bus_valid = d.and_bit(bus_valid_raw, enable);
    let inflight = {
        let c = d.resize(&count.q(), cntw + 1);
        let cv = d.resize(&commits_now, cntw + 1);
        d.add(&c, &cv)
    };
    let resolved = {
        let drops = {
            let zero_c = d.lit(cntw, 0);
            d.mux(flush, &count.q(), &zero_c)
        };
        let drops_w = d.resize(&drops, cntw + 1);
        let commits_w = d.resize(&commits_now, cntw + 1);
        let sum = d.add(&drops_w, &commits_w);
        // Only meaningful while enabled; a paused machine resolves nothing.
        let zero = d.lit(cntw + 1, 0);
        d.mux(enable, &sum, &zero)
    };
    let ports = CpuPorts {
        commits,
        bus_valid,
        bus_addr: d.mux(bus_valid, &bus_addr_raw, &zero_a),
        inflight,
        resolved,
        exec_fault: {
            let zero_e = d.lit(2, 0);
            d.mux(enable, &exec_fault_raw, &zero_e)
        },
        secret_words: secret.words.clone(),
    };
    ports.add_probes(d);
    d.probe("pc", &pc.q());
    let count_q = count.q();
    d.probe("rob_count", &count_q);
    d.pop_scope();
    ports
}

/// Resolves one waiting operand against all broadcast channels.
/// Returns `((still_waiting, tag), value)`.
fn resolve_operand(
    d: &mut Design,
    qb: Bit,
    qt: &Word,
    v: &Word,
    bcasts: &[Bcast],
) -> ((Bit, Word), Word) {
    let mut waiting = qb;
    let mut value = v.clone();
    for bc in bcasts {
        let same = d.eq(qt, &bc.tag);
        let hit = d.all(&[qb, bc.valid, same]);
        value = d.mux(hit, &bc.value, &value);
        waiting = d.and_bit(waiting, hit.not());
    }
    ((waiting, qt.clone()), value)
}

/// Dispatch-time source lookup against the register file, the register
/// status table and the ROB (respecting the forwarding policy). Returns
/// `(waiting, tag, value)` *before* broadcast resolution and intra-group
/// bypass, which the caller layers on top in the correct order.
#[allow(clippy::too_many_arguments)]
fn lookup_source(
    d: &mut Design,
    cfg: &CpuConfig,
    rs: &Word,
    uses: Bit,
    rf: &[Reg],
    rs_busy: &[Reg],
    rs_tag: &[Reg],
    entries: &[EntryRegs],
    e_busy: &[Bit],
    e_done: &[Bit],
    e_is_ld: &[Bit],
    e_tainted: &[Bit],
) -> (Bit, Word, Word) {
    let r = entries.len();
    // Architectural value.
    let rf_words: Vec<Word> = rf.iter().map(|x| x.q()).collect();
    let arch = d.select(rs, &rf_words);
    // Register-status lookup.
    let busy_bits: Vec<Word> = rs_busy.iter().map(|x| x.q()).collect();
    let tag_words: Vec<Word> = rs_tag.iter().map(|x| x.q()).collect();
    let sbusy = d.select(rs, &busy_bits).bit(0);
    let stag = d.select(rs, &tag_words);
    // Can we read the producer's value straight from the ROB? NoFwd*
    // policies block reading completed-but-uncommitted load results (§7.2).
    let fwd_ok: Vec<Bit> = (0..r)
        .map(|e| {
            let blocked = match cfg.defense {
                Defense::NoFwdFuturistic => e_is_ld[e],
                Defense::NoFwdSpectre => d.and_bit(e_is_ld[e], e_tainted[e]),
                _ => Bit::FALSE,
            };
            blocked.not()
        })
        .collect();
    let readable: Vec<Bit> = (0..r)
        .map(|e| d.all(&[e_busy[e], e_done[e], fwd_ok[e]]))
        .collect();
    let readable_sel = {
        let bits: Vec<Word> = readable.iter().map(|&b| Word::from_bit(b)).collect();
        d.select(&stag, &bits).bit(0)
    };
    let rob_value = {
        let vals: Vec<Word> = entries.iter().map(|e| e.value.q()).collect();
        d.select(&stag, &vals)
    };
    // Compose: default architectural; override when a producer is in flight.
    let mut qb = d.and_bit(uses, sbusy);
    let take_rob = d.and_bit(qb, readable_sel);
    qb = d.and_bit(qb, readable_sel.not());
    let qt = stag.clone();
    let v = d.mux(take_rob, &rob_value, &arch);
    (qb, qt, v)
}

/// The subset of dispatch-slot signals `lookup_source` needs from older
/// slots in the same dispatch group.
struct DispatchSlotView {
    go: Bit,
    alloc: Word,
    rd: Word,
    has_rd: Bit,
}

/// Counts set bits into a `width`-bit word.
fn popcount(d: &mut Design, bits: &[Bit], width: usize) -> Word {
    let mut acc = d.lit(width, 0);
    for &b in bits {
        let bw = d.resize(&Word::from_bit(b), width);
        acc = d.add(&acc, &bw);
    }
    acc
}

fn onehot_mux_bit(d: &mut Design, onehot: &[Bit], bits: &[Bit]) -> Bit {
    let words: Vec<Word> = bits.iter().map(|&b| Word::from_bit(b)).collect();
    onehot_mux(d, onehot, &words).bit(0)
}

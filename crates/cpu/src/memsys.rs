//! The memory system shared by processor copies.
//!
//! Both processor instances of a hyperproperty check run the *same*
//! program over the *same* public data but *different* secrets (paper §4.1,
//! §6 step 3). Because MiniISA has no stores, instruction memory and the
//! public half of data memory are read-only and can be physically shared
//! between the two copies — which halves the symbolic state and is one of
//! the scalability levers of the two-machine scheme. Each processor owns a
//! private symbolic secret region (the upper half of the data address
//! space, §3).

use csl_hdl::{Design, Init, MemArray, Word};
use csl_isa::IsaConfig;

/// Read-only memories shared by every machine in a verification instance.
pub struct SharedMem {
    /// Encoded-instruction slots, fully symbolic ("all programs", §6).
    pub imem: MemArray,
    /// Public data words (the lower half of the address space).
    pub dmem_pub: MemArray,
}

impl SharedMem {
    /// Allocates the shared memories (unsealed; call [`SharedMem::seal`]
    /// after all readers are built).
    pub fn new(d: &mut Design, cfg: &IsaConfig) -> SharedMem {
        let imem = MemArray::new(d, "imem", cfg.imem_size, cfg.inst_bits(), Init::Symbolic);
        let dmem_pub = MemArray::new(d, "dmem_pub", cfg.dmem_size / 2, cfg.xlen, Init::Symbolic);
        SharedMem { imem, dmem_pub }
    }

    /// Seals both memories as symbolic constants.
    pub fn seal(self, d: &mut Design) {
        self.imem.seal_const(d);
        self.dmem_pub.seal_const(d);
    }
}

/// One processor's private secret region.
pub struct SecretMem {
    /// Current values of the secret words (symbolic constants).
    pub words: Vec<Word>,
}

impl SecretMem {
    /// Allocates and seals a secret region under the current scope.
    pub fn new(d: &mut Design, cfg: &IsaConfig) -> SecretMem {
        let mem = MemArray::new(d, "dmem_sec", cfg.dmem_size / 2, cfg.xlen, Init::Symbolic);
        let words = (0..mem.len()).map(|i| mem.word(i)).collect();
        mem.seal_const(d);
        SecretMem { words }
    }
}

/// Combinational data-memory read: `word_addr` is a word index
/// (`dmem_bits` wide); the top bit selects the secret region.
pub fn read_dmem(d: &mut Design, shared: &SharedMem, secret: &SecretMem, word_addr: &Word) -> Word {
    let db = word_addr.width();
    let is_secret = word_addr.bit(db - 1);
    let low = if db == 1 {
        // Degenerate 2-word memory: one public, one secret word.
        d.lit(1, 0)
    } else {
        word_addr.slice(0, db - 1)
    };
    let pub_data = shared.dmem_pub.read(d, &low);
    let sec_data = select_word(d, &secret.words, &low);
    d.mux(is_secret, &sec_data, &pub_data)
}

fn select_word(d: &mut Design, words: &[Word], idx: &Word) -> Word {
    d.select(idx, words)
}

/// Fetch: combinational instruction-memory read.
pub fn read_imem(d: &mut Design, shared: &SharedMem, pc: &Word) -> Word {
    shared.imem.read(d, pc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_shapes() {
        let cfg = IsaConfig::default();
        let mut d = Design::new("t");
        let sm = SharedMem::new(&mut d, &cfg);
        assert_eq!(sm.imem.len(), 8);
        assert_eq!(sm.imem.width(), 11);
        assert_eq!(sm.dmem_pub.len(), 2);
        d.push_scope("cpu1");
        let sec = SecretMem::new(&mut d, &cfg);
        d.pop_scope();
        assert_eq!(sec.words.len(), 2);
        let addr = d.lit(cfg.dmem_bits(), 3);
        let _ = read_dmem(&mut d, &sm, &sec, &addr);
        sm.seal(&mut d);
        let aig = d.finish();
        // 8*11 imem + 2*4 public + 2*4 secret latches.
        assert_eq!(aig.num_latches(), 88 + 8 + 8);
        assert!(aig
            .latches()
            .iter()
            .any(|l| l.name.starts_with("cpu1.dmem_sec")));
    }

    #[test]
    fn secret_select_uses_top_bit() {
        // Constant-fold check: addr 0b10 (word 2) must hit secret word 0.
        let cfg = IsaConfig::default();
        let mut d = Design::new("t");
        let sm = SharedMem::new(&mut d, &cfg);
        let sec = SecretMem::new(&mut d, &cfg);
        let addr = d.lit(2, 2);
        let data = read_dmem(&mut d, &sm, &sec, &addr);
        assert_eq!(data, sec.words[0]);
        let addr = d.lit(2, 3);
        let data = read_dmem(&mut d, &sm, &sec, &addr);
        assert_eq!(data, sec.words[1]);
        sm.seal(&mut d);
        let _ = d.finish();
    }
}

//! `csl-certify` — independent checking of proof certificates and attack
//! witnesses.
//!
//! The engines in `csl-mc` decide safety with thousands of incremental SAT
//! calls spread across racing lanes, warm-started sessions and a shared
//! lemma bus. Trusting a `Proven` verdict therefore means trusting all of
//! that machinery. This crate removes the need to: every decided verdict is
//! accompanied by a small artifact — a [`Certificate`] for proofs, a
//! [`Witness`] for attacks — that can be re-validated here in milliseconds
//! against the **raw, unprepared** netlist, with fresh solver instances
//! that share no state with the engines that produced it.
//!
//! # What a certificate claims
//!
//! A [`Certificate`] (defined in `csl_mc::cert`, re-exported here) names an
//! inductive invariant in raw-netlist vocabulary: restored stuck-at-reset
//! constants, surviving candidate invariants, and — for PDR-style proofs —
//! the blocked-cube clauses of the converged frame. [`check_certificate`]
//! validates the standard three obligations with three *fresh* SAT
//! sessions:
//!
//! 1. **Initiation** — every conjunct holds in the reset state (under the
//!    netlist's assume bits),
//! 2. **Consecution** — the conjunction is 1-inductive: assuming all
//!    conjuncts at frame 0 (assumes at both frames), no conjunct can be
//!    violated at frame 1,
//! 3. **Safety** — no state satisfying the conjunction and the assumes
//!    fires a bad bit.
//!
//! For [`CertKind::KInduction`] certificates the invariant is the support
//! set alone (restored constants + survivors); after establishing its
//! invariance (obligations 1–2), the checker replays the closing induction:
//! bad is unreachable in the first `k` reset frames, and a window of `k`
//! good assume-satisfying frames cannot be followed by a bad one.
//!
//! The conjuncts are verified **jointly** (each consecution query assumes
//! all of them at frame 0) — mutual induction over a conjunction is sound,
//! and it is exactly what Houdini's fixpoint and PDR's relative induction
//! established on the prepared netlist.
//!
//! # Vocabulary and cone of influence
//!
//! Certificates arrive lifted through the preparation pipeline's
//! `Reconstruction` (see `csl_hdl::xform`), so latch and candidate indices
//! refer to the original netlist. The checker clones that netlist and
//! attaches every referenced bit as a probe before building its transition
//! system, so cone-of-influence reduction cannot silently drop a latch the
//! certificate constrains: a latch outside the checker's cone would
//! otherwise be treated as unconstrained and a sound certificate could be
//! spuriously rejected.
//!
//! # Failure is typed, not fatal
//!
//! Every way a certificate can fail to validate — malformed indices, a
//! conjunct false at reset, a non-inductive conjunct, a blocked cube that
//! does not exclude bad, an exhausted budget — is a distinct [`Rejection`]
//! variant, so callers (the `csl-certify` binary, the report cache's
//! verify-on-load path, the serve daemon) can report *why* an artifact was
//! refused.

use std::time::{Duration, Instant};

use csl_hdl::{Aig, Bit};
use csl_mc::trace::Trace;
use csl_mc::ts::TransitionSystem;
use csl_mc::unroll::{InitMode, Unroller};
use csl_mc::{SafetyCheck, Sim};
use csl_sat::{Budget, Lit, SolveResult};

pub use csl_mc::{CertKind, Certificate};

/// Why a certificate or witness was refused. Ordered roughly from
/// "malformed artifact" to "well-formed but wrong".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// A restored-constant or blocked-cube entry names a latch the netlist
    /// does not have.
    LatchOutOfRange { index: u32, latches: usize },
    /// A survivor index exceeds the instance's candidate list.
    SurvivorOutOfRange { index: usize, candidates: usize },
    /// A witness input assignment names an input the netlist does not have.
    InputOutOfRange { index: u32, inputs: usize },
    /// A k-induction certificate with `k = 0` claims nothing.
    ZeroK,
    /// A conjunct does not hold in the reset state (initiation fails).
    InitViolated { conjunct: String },
    /// A conjunct can be violated one step after a state satisfying the
    /// whole conjunction (consecution fails).
    NotInductive { conjunct: String },
    /// A state satisfying the invariant and the assumes fires a bad bit
    /// (the invariant does not imply safety).
    NotSafe,
    /// A bad state is reachable within the first `k` reset frames, so the
    /// k-induction base case is false at `frame`.
    BaseFailed { frame: usize },
    /// `k` good frames can be followed by a bad one: the k-induction step
    /// does not close.
    StepFailed { k: usize },
    /// The checker's SAT budget ran out before a verdict in `phase`; the
    /// certificate is neither accepted nor refuted.
    Budget { phase: &'static str },
    /// The witness trace is empty: it cannot reach a bad state.
    EmptyTrace,
    /// Replaying the witness violated an assume bit, so the run it
    /// describes is outside the verification contract.
    AssumeViolated,
    /// Replaying the witness did not fire any bad bit on its final cycle.
    NoBadReached,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::LatchOutOfRange { index, latches } => {
                write!(
                    f,
                    "latch index {index} out of range (netlist has {latches} latches)"
                )
            }
            Rejection::SurvivorOutOfRange { index, candidates } => {
                write!(
                    f,
                    "survivor index {index} out of range (instance has {candidates} candidates)"
                )
            }
            Rejection::InputOutOfRange { index, inputs } => {
                write!(
                    f,
                    "input index {index} out of range (netlist has {inputs} inputs)"
                )
            }
            Rejection::ZeroK => write!(f, "k-induction certificate with k = 0 claims nothing"),
            Rejection::InitViolated { conjunct } => {
                write!(f, "initiation fails: {conjunct} does not hold at reset")
            }
            Rejection::NotInductive { conjunct } => {
                write!(
                    f,
                    "consecution fails: {conjunct} is not preserved by a step"
                )
            }
            Rejection::NotSafe => write!(f, "invariant does not exclude the bad states"),
            Rejection::BaseFailed { frame } => {
                write!(f, "k-induction base fails: bad reachable at frame {frame}")
            }
            Rejection::StepFailed { k } => {
                write!(f, "k-induction step fails to close at k = {k}")
            }
            Rejection::Budget { phase } => {
                write!(f, "checker budget exhausted during the {phase} check")
            }
            Rejection::EmptyTrace => write!(f, "witness trace is empty"),
            Rejection::AssumeViolated => {
                write!(f, "witness replay violates an assume bit")
            }
            Rejection::NoBadReached => {
                write!(f, "witness replay does not reach a bad state")
            }
        }
    }
}

impl std::error::Error for Rejection {}

/// Evidence that a certificate validated, with enough detail to audit the
/// cost claim ("milliseconds, not the solve budget").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertCheck {
    /// Number of invariant conjuncts the certificate named.
    pub conjuncts: usize,
    /// Fresh SAT queries issued (each must return UNSAT).
    pub sat_calls: usize,
    /// Wall time for the whole validation.
    pub elapsed: Duration,
}

/// Evidence that a witness validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessCheck {
    /// Cycles replayed before the bad bit fired.
    pub cycles: usize,
    /// Wall time for the replay.
    pub elapsed: Duration,
}

/// An attack witness: a counterexample [`Trace`] in raw-netlist vocabulary
/// (already lifted through the preparation pipeline's reconstruction).
/// Checked by concrete replay — no solver involved — via [`check_witness`].
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// The trace to replay against the raw netlist.
    pub trace: Trace,
}

impl Witness {
    pub fn new(trace: Trace) -> Witness {
        Witness { trace }
    }
}

/// One conjunct of the claimed invariant, with a human-readable label for
/// rejection messages.
enum Conjunct {
    /// "bit has this value".
    Unit(Bit, bool, String),
    /// Disjunction of "bit has this value" over the literals (a blocked
    /// cube's negation).
    Clause(Vec<(Bit, bool)>, String),
}

impl Conjunct {
    fn label(&self) -> String {
        match self {
            Conjunct::Unit(_, _, l) | Conjunct::Clause(_, l) => l.clone(),
        }
    }

    /// Every netlist bit the conjunct mentions (for probe attachment).
    fn bits(&self, out: &mut Vec<Bit>) {
        match self {
            Conjunct::Unit(b, _, _) => out.push(*b),
            Conjunct::Clause(lits, _) => out.extend(lits.iter().map(|&(b, _)| b)),
        }
    }

    /// Asserts the conjunct as hard clauses at `frame`.
    fn assert_at(&self, u: &mut Unroller, frame: usize) {
        match self {
            Conjunct::Unit(b, v, _) => u.assert_clause_at(&[(*b, *v)], frame),
            Conjunct::Clause(lits, _) => u.assert_clause_at(lits, frame),
        }
    }

    /// Assumption literals whose conjunction says "this conjunct is
    /// violated at `frame`".
    fn negation_at(&self, u: &mut Unroller, frame: usize) -> Vec<Lit> {
        let neg = |u: &mut Unroller, b: Bit, v: bool| {
            let l = u.lit_of(b, frame);
            if v {
                !l
            } else {
                l
            }
        };
        match self {
            Conjunct::Unit(b, v, _) => vec![neg(u, *b, *v)],
            Conjunct::Clause(lits, _) => lits.iter().map(|&(b, v)| neg(u, b, v)).collect(),
        }
    }
}

/// Maps a certificate onto the task's netlist: restored constants and
/// survivors become unit conjuncts, blocked cubes become clause conjuncts.
/// Rejects out-of-range indices before any solver is built.
fn conjuncts_of(task: &SafetyCheck, cert: &Certificate) -> Result<Vec<Conjunct>, Rejection> {
    let latches = task.aig.latches();
    let latch_bit = |index: u32| -> Result<Bit, Rejection> {
        latches
            .get(index as usize)
            .map(|l| l.output)
            .ok_or(Rejection::LatchOutOfRange {
                index,
                latches: latches.len(),
            })
    };
    let mut out = Vec::new();
    for &(i, v) in &cert.restored {
        out.push(Conjunct::Unit(
            latch_bit(i)?,
            v,
            format!("restored constant (latch {i} = {v})"),
        ));
    }
    for &s in &cert.survivors {
        let c = task
            .candidates
            .get(s)
            .ok_or(Rejection::SurvivorOutOfRange {
                index: s,
                candidates: task.candidates.len(),
            })?;
        out.push(Conjunct::Unit(
            c.bit,
            true,
            format!("survivor '{}'", c.name),
        ));
    }
    if let CertKind::Inductive { blocked } = &cert.kind {
        for (n, cube) in blocked.iter().enumerate() {
            let mut lits = Vec::with_capacity(cube.len());
            for &(latch, v) in cube {
                // The clause is the cube's negation: some literal differs.
                lits.push((latch_bit(latch)?, !v));
            }
            out.push(Conjunct::Clause(lits, format!("blocked cube #{n}")));
        }
    }
    Ok(out)
}

/// Builds the checker's transition system: the raw netlist with every
/// certificate-referenced bit attached as a probe, so cone-of-influence
/// reduction keeps the full certificate vocabulary constrained.
fn checker_ts(task: &SafetyCheck, conjuncts: &[Conjunct]) -> std::sync::Arc<TransitionSystem> {
    let mut bits = Vec::new();
    for c in conjuncts {
        c.bits(&mut bits);
    }
    let mut aug = task.aig.clone();
    aug.add_probe("certificate", bits);
    TransitionSystem::shared(aug, true)
}

fn expect_unsat(
    r: SolveResult,
    on_sat: impl FnOnce() -> Rejection,
    phase: &'static str,
) -> Result<(), Rejection> {
    match r {
        SolveResult::Unsat => Ok(()),
        SolveResult::Sat => Err(on_sat()),
        SolveResult::Canceled => Err(Rejection::Budget { phase }),
    }
}

/// Obligations 1 and 2: every conjunct holds at reset, and the conjunction
/// is preserved by one transition. Returns the number of SAT calls made.
fn check_invariance(
    ts: &std::sync::Arc<TransitionSystem>,
    conjuncts: &[Conjunct],
    budget: &Budget,
) -> Result<usize, Rejection> {
    let mut calls = 0;
    // Initiation: reset frame, assumes asserted, each conjunct's negation
    // must be unsatisfiable.
    let mut u = Unroller::new(ts, InitMode::Reset);
    u.set_budget(budget.clone());
    u.assert_assumes_through(0);
    for c in conjuncts {
        let asmps = c.negation_at(&mut u, 0);
        calls += 1;
        expect_unsat(
            u.solve_with(&asmps),
            || Rejection::InitViolated {
                conjunct: c.label(),
            },
            "initiation",
        )?;
    }
    // Consecution: arbitrary frame-0 state satisfying all conjuncts and
    // the assumes (at both frames); no conjunct may fail at frame 1.
    let mut u = Unroller::new(ts, InitMode::Free);
    u.set_budget(budget.clone());
    u.assert_assumes_through(1);
    for c in conjuncts {
        c.assert_at(&mut u, 0);
    }
    for c in conjuncts {
        let asmps = c.negation_at(&mut u, 1);
        calls += 1;
        expect_unsat(
            u.solve_with(&asmps),
            || Rejection::NotInductive {
                conjunct: c.label(),
            },
            "consecution",
        )?;
    }
    Ok(calls)
}

/// Validates `cert` against the raw instance `task` with an unlimited
/// budget. See the module docs for the obligations checked.
pub fn check_certificate(task: &SafetyCheck, cert: &Certificate) -> Result<CertCheck, Rejection> {
    check_certificate_with(task, cert, &Budget::unlimited())
}

/// [`check_certificate`] under an explicit SAT budget. A budget exhausted
/// mid-check rejects with [`Rejection::Budget`] — the artifact is neither
/// accepted nor refuted — so callers distinguishing "forged" from "slow"
/// must inspect the variant.
pub fn check_certificate_with(
    task: &SafetyCheck,
    cert: &Certificate,
    budget: &Budget,
) -> Result<CertCheck, Rejection> {
    let start = Instant::now();
    let conjuncts = conjuncts_of(task, cert)?;
    let ts = checker_ts(task, &conjuncts);
    let mut sat_calls = 0;
    match &cert.kind {
        CertKind::Inductive { .. } => {
            sat_calls += check_invariance(&ts, &conjuncts, budget)?;
            // Safety: a fresh session — the consecution instance carries
            // assume clauses at frame 1 that could mask a violation.
            let mut u = Unroller::new(&ts, InitMode::Free);
            u.set_budget(budget.clone());
            u.assert_assumes_through(0);
            for c in &conjuncts {
                c.assert_at(&mut u, 0);
            }
            let bad = u.bad_any_at(0);
            sat_calls += 1;
            expect_unsat(u.solve_with(&[bad]), || Rejection::NotSafe, "safety")?;
        }
        CertKind::KInduction { k } => {
            let k = *k;
            if k == 0 {
                return Err(Rejection::ZeroK);
            }
            // The support set (restored constants + survivors) strengthens
            // the induction step below, so its own invariance must be
            // established first.
            if !conjuncts.is_empty() {
                sat_calls += check_invariance(&ts, &conjuncts, budget)?;
            }
            // Base: bad unreachable in the first k reset frames.
            let mut u = Unroller::new(&ts, InitMode::Reset);
            u.set_budget(budget.clone());
            for t in 0..k {
                u.assert_assumes_through(t);
                let bad = u.bad_any_at(t);
                sat_calls += 1;
                expect_unsat(
                    u.solve_with(&[bad]),
                    || Rejection::BaseFailed { frame: t },
                    "base",
                )?;
            }
            // Step: k good assume-satisfying frames (support asserted
            // throughout) cannot be followed by a bad frame.
            let mut u = Unroller::new(&ts, InitMode::Free);
            u.set_budget(budget.clone());
            u.assert_assumes_through(k);
            for t in 0..=k {
                for c in &conjuncts {
                    c.assert_at(&mut u, t);
                }
            }
            for t in 0..k {
                let bad = u.bad_any_at(t);
                u.solver.add_clause(&[!bad]);
            }
            let bad_k = u.bad_any_at(k);
            sat_calls += 1;
            expect_unsat(
                u.solve_with(&[bad_k]),
                || Rejection::StepFailed { k },
                "step",
            )?;
        }
    }
    Ok(CertCheck {
        conjuncts: conjuncts.len(),
        sat_calls,
        elapsed: start.elapsed(),
    })
}

/// Validates an attack witness by concrete replay on the raw netlist: the
/// trace must keep every assume bit satisfied on every cycle and fire a
/// bad bit on its final cycle. Malformed latch/input indices are rejected
/// before the simulator runs.
pub fn check_witness(aig: &Aig, witness: &Witness) -> Result<WitnessCheck, Rejection> {
    let start = Instant::now();
    let trace = &witness.trace;
    if trace.depth() == 0 {
        return Err(Rejection::EmptyTrace);
    }
    for &(i, _) in &trace.initial_latches {
        if i as usize >= aig.num_latches() {
            return Err(Rejection::LatchOutOfRange {
                index: i,
                latches: aig.num_latches(),
            });
        }
    }
    for cycle in &trace.inputs {
        for &i in cycle.keys() {
            if i as usize >= aig.num_inputs() {
                return Err(Rejection::InputOutOfRange {
                    index: i,
                    inputs: aig.num_inputs(),
                });
            }
        }
    }
    let (assumes_ok, bad) = Sim::new(aig).replay(trace);
    if !assumes_ok {
        return Err(Rejection::AssumeViolated);
    }
    if !bad {
        return Err(Rejection::NoBadReached);
    }
    Ok(WitnessCheck {
        cycles: trace.depth(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};
    use csl_mc::houdini::Candidate;

    /// A latch stuck at its zero reset: `s == 0` is 1-inductive.
    fn stuck_latch() -> SafetyCheck {
        let mut d = Design::new("stuck");
        let s = d.reg("s", 1, Init::Zero);
        d.set_next(&s, s.q());
        let one = d.eq_const(&s.q(), 1);
        d.assert_always("never1", one.not());
        SafetyCheck {
            aig: d.finish(),
            candidates: vec![Candidate {
                name: "szero".into(),
                bit: one.not(),
            }],
        }
    }

    /// A 3-bit counter saturating at 3: bad (`r == 7`) is unreachable,
    /// the MSB latch (index 2) stays 0, and plain k-induction closes at
    /// k = 4 (state 4 has no predecessor) but not below.
    fn saturating_counter() -> SafetyCheck {
        let mut d = Design::new("sat");
        let r = d.reg("r", 3, Init::Zero);
        let at_max = d.eq_const(&r.q(), 3);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at_max, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 7);
        d.assert_always("no7", bad.not());
        SafetyCheck {
            aig: d.finish(),
            candidates: vec![],
        }
    }

    #[test]
    fn survivor_certificate_validates() {
        let task = stuck_latch();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![0],
            kind: CertKind::Inductive { blocked: vec![] },
        };
        let ok = check_certificate(&task, &cert).unwrap();
        assert_eq!(ok.conjuncts, 1);
        assert!(ok.sat_calls >= 3);
    }

    #[test]
    fn blocked_cube_certificate_validates() {
        // Blocking the MSB (cube "latch 2 is 1") leaves exactly the
        // states 0..=3 — an inductive invariant excluding r == 7.
        let task = saturating_counter();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::Inductive {
                blocked: vec![vec![(2, true)]],
            },
        };
        let ok = check_certificate(&task, &cert).unwrap();
        assert_eq!(ok.conjuncts, 1);
        assert_eq!(ok.sat_calls, 3);
    }

    #[test]
    fn flipped_cube_literal_rejected() {
        // Blocking "latch 2 is 0" instead claims the MSB is stuck at 1 —
        // false in the reset state.
        let task = saturating_counter();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::Inductive {
                blocked: vec![vec![(2, false)]],
            },
        };
        assert!(matches!(
            check_certificate(&task, &cert),
            Err(Rejection::InitViolated { .. })
        ));
    }

    #[test]
    fn empty_inductive_certificate_rejected_when_bad_reachable_at_init_free() {
        // With no conjuncts the invariant is `true`, and safety demands
        // no assume-satisfying state at all is bad — false here, since
        // the state r == 7 exists even though it is unreachable.
        let task = saturating_counter();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::Inductive { blocked: vec![] },
        };
        assert_eq!(check_certificate(&task, &cert), Err(Rejection::NotSafe));
    }

    #[test]
    fn kinduction_closing_k_validates() {
        let task = saturating_counter();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::KInduction { k: 4 },
        };
        let ok = check_certificate(&task, &cert).unwrap();
        assert_eq!(ok.conjuncts, 0);
        // k base queries + 1 step query.
        assert_eq!(ok.sat_calls, 5);
    }

    #[test]
    fn kinduction_below_closing_k_rejected() {
        let task = saturating_counter();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::KInduction { k: 3 },
        };
        assert_eq!(
            check_certificate(&task, &cert),
            Err(Rejection::StepFailed { k: 3 })
        );
    }

    #[test]
    fn out_of_range_survivor_rejected() {
        let task = stuck_latch();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![5],
            kind: CertKind::Inductive { blocked: vec![] },
        };
        assert_eq!(
            check_certificate(&task, &cert),
            Err(Rejection::SurvivorOutOfRange {
                index: 5,
                candidates: 1
            })
        );
    }

    #[test]
    fn zero_k_rejected() {
        let task = stuck_latch();
        let cert = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::KInduction { k: 0 },
        };
        assert_eq!(check_certificate(&task, &cert), Err(Rejection::ZeroK));
    }

    #[test]
    fn flipped_restored_constant_rejected_at_init() {
        // Claiming the stuck latch is stuck at 1 contradicts its zero
        // reset: initiation must fail.
        let task = stuck_latch();
        let cert = Certificate {
            restored: vec![(0, true)],
            survivors: vec![],
            kind: CertKind::Inductive { blocked: vec![] },
        };
        assert!(matches!(
            check_certificate(&task, &cert),
            Err(Rejection::InitViolated { .. })
        ));
    }

    #[test]
    fn witness_replay_round_trip() {
        // An input-triggered failure: driving the trigger on cycle 0
        // makes the latch fire the bad bit on cycle 1.
        let mut d = Design::new("trig");
        let go = d.input("go", 1);
        let t = d.reg("t", 1, Init::Zero);
        d.set_next(&t, go);
        let hit = d.eq_const(&t.q(), 1);
        d.assert_always("never", hit.not());
        let aig = d.finish();

        let good = Witness::new(Trace {
            initial_latches: vec![(0, false)],
            inputs: vec![[(0u32, true)].into_iter().collect(), Default::default()],
            bad_name: "never".into(),
        });
        let ok = check_witness(&aig, &good).unwrap();
        assert_eq!(ok.cycles, 2);

        // Truncating the trace loses the failing cycle.
        let mut truncated = good.clone();
        truncated.trace.inputs.truncate(1);
        assert_eq!(
            check_witness(&aig, &truncated),
            Err(Rejection::NoBadReached)
        );
    }

    #[test]
    fn empty_witness_rejected() {
        let task = stuck_latch();
        let w = Witness::new(Trace {
            initial_latches: vec![],
            inputs: vec![],
            bad_name: "never1".into(),
        });
        assert_eq!(check_witness(&task.aig, &w), Err(Rejection::EmptyTrace));
    }
}

//! Certificate-subsystem soundness (property tests over random AIGs).
//!
//! * **Completeness of evidence**: every decided verdict `check_safety`
//!   produces on a random design comes with evidence the independent
//!   checker accepts — proofs a certificate passing its three
//!   obligations against the *raw* (unprepared) netlist, attacks a
//!   witness that replays to a bad state with every assume held.
//! * **Tamper rejection**: mutated certificates (an injected clause
//!   that blocks the reset state, a flipped restored-constant literal,
//!   dropped clauses, out-of-range indices, a zeroed `k`) and mutated
//!   witnesses (truncated or emptied traces, out-of-range inputs) are
//!   rejected.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csl_certify::{check_certificate, check_witness, CertKind, Rejection, Witness};
use csl_hdl::{Aig, Design, Init};
use csl_mc::{check_safety, CheckOptions, PrepareConfig, SafetyCheck, Trace, Verdict};

/// A random small sequential design with enough variety to hit every
/// engine: a gated counter (live logic) racing a fixed target, a latch
/// frozen at reset (so the constant sweep has something to restore), an
/// unobserved shifter (dead logic), an optional input-implication
/// assume, and a bad predicate whose reachability depends on the drawn
/// target and step.
fn random_design(seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
    let mut d = Design::new("cert-rand");
    let width = rng.gen_range(3usize..=4);
    let go = d.input_bit("go");
    let sel = d.input_bit("sel");

    // Live: the counter advances by `step` whenever `go` is up.
    let ctr = d.reg("ctr", width, Init::Zero);
    let step = rng.gen_range(1u64..=3);
    let bumped = d.add_const(&ctr.q(), step);
    let next = d.mux(go, &bumped, &ctr.q());
    d.set_next(&ctr, next);

    // Frozen: never leaves its reset value, but feeds observable logic
    // so only the constant sweep (not dead-latch removal) can fold it.
    let frozen = d.reg("frozen", 1, Init::Zero);
    d.hold(&frozen);
    let glitch = d.and_bit(frozen.q().bit(0), sel);

    // Dead: churns every cycle, observed by nothing.
    let ghost = d.reg("ghost", 4, Init::Zero);
    let spun = d.add_const(&ghost.q(), 5);
    d.set_next(&ghost, spun);

    if rng.gen_bool(0.5) {
        let imp = d.implies_bit(sel, go);
        d.assume(imp);
    }
    // Reachability of `ctr == target` depends on `step` and `target`:
    // some seeds yield attacks, others proofs.
    let target = rng.gen_range(1u64..(1 << width));
    let hit = d.eq_const(&ctr.q(), target);
    let bad = d.or_bit(hit, glitch);
    d.assert_always("ctr_hits", bad.not());
    d.finish()
}

/// Generous engine set (k-induction plus PDR behind deep BMC) so every
/// tiny instance decides, with preparation on so certificates exercise
/// the restore maps. Certification itself defaults on.
fn opts() -> CheckOptions {
    CheckOptions {
        bmc_depth: 24,
        kind_max_k: 4,
        use_pdr: true,
        pdr_max_frames: 64,
        prepare: PrepareConfig::on(),
        ..CheckOptions::default()
    }
}

fn task(seed: u64) -> SafetyCheck {
    SafetyCheck {
        aig: random_design(seed),
        candidates: vec![],
    }
}

const SEEDS: u64 = 24;

#[test]
fn every_decided_verdict_carries_accepted_evidence() {
    let mut proofs = 0usize;
    let mut attacks = 0usize;
    for seed in 0..SEEDS {
        let task = task(seed);
        let report = check_safety(&task, &opts());
        match &report.verdict {
            Verdict::Proof(engine) => {
                proofs += 1;
                let cert = report.certificate.as_ref().unwrap_or_else(|| {
                    panic!("seed {seed}: proof ({engine:?}) must carry a certificate")
                });
                let check = check_certificate(&task, cert);
                let check = check.unwrap_or_else(|e| {
                    panic!("seed {seed}: certificate must validate ({engine:?}): {e:?}")
                });
                assert!(
                    check.sat_calls > 0,
                    "seed {seed}: validation must query SAT"
                );
            }
            Verdict::Attack(trace) => {
                attacks += 1;
                let check = check_witness(&task.aig, &Witness::new((**trace).clone()));
                assert!(check.is_ok(), "seed {seed}: witness must replay: {check:?}");
            }
            other => panic!("seed {seed}: tiny instance failed to decide: {other:?}"),
        }
    }
    // Both outcomes must occur, or half the property went unexercised.
    assert!(proofs > 0, "no seed produced a proof");
    assert!(attacks > 0, "no seed produced an attack");
}

/// Mutations whose rejection is semantically forced, applied to every
/// proof in the corpus.
#[test]
fn tampered_certificates_are_rejected() {
    let mut flipped_restored = 0usize;
    let mut weakened = 0usize;
    let mut zeroed_k = 0usize;
    let mut proofs = 0usize;
    for seed in 0..SEEDS {
        let task = task(seed);
        let report = check_safety(&task, &opts());
        if !report.verdict.is_proof() {
            continue;
        }
        proofs += 1;
        let cert = report.certificate.as_ref().expect("proofs carry certs");

        // Out-of-range latch in a blocked cube: structural rejection.
        let mut mutant = cert.clone();
        mutant.kind = CertKind::Inductive {
            blocked: vec![vec![(u32::MAX, true)]],
        };
        assert!(
            matches!(
                check_certificate(&task, &mutant),
                Err(Rejection::LatchOutOfRange { .. })
            ),
            "seed {seed}: out-of-range cube latch must be rejected"
        );

        // Survivor index with no candidate list behind it.
        let mut mutant = cert.clone();
        mutant.survivors.push(7);
        assert!(
            matches!(
                check_certificate(&task, &mutant),
                Err(Rejection::SurvivorOutOfRange { .. })
            ),
            "seed {seed}: out-of-range survivor must be rejected"
        );

        // An injected clause that blocks the reset state itself (a
        // single-literal cube holding a latch at its init value covers
        // reset): initiation must fail.
        let mut mutant = cert.clone();
        let (idx, val) = task
            .aig
            .latches()
            .iter()
            .enumerate()
            .find_map(|(i, l)| match l.init {
                Init::Zero => Some((i as u32, false)),
                Init::One => Some((i as u32, true)),
                Init::Symbolic => None,
            })
            .expect("the generator only emits deterministic-init latches");
        let reset_cube = vec![(idx, val)];
        match &mut mutant.kind {
            CertKind::Inductive { blocked } => blocked.push(reset_cube),
            CertKind::KInduction { .. } => {
                mutant.kind = CertKind::Inductive {
                    blocked: vec![reset_cube],
                }
            }
        }
        assert!(
            matches!(
                check_certificate(&task, &mutant),
                Err(Rejection::InitViolated { .. })
            ),
            "seed {seed}: a clause excluding the reset state must fail initiation"
        );

        // Flipped restored-constant literal: the sweep proved the latch
        // stuck at its reset value, so the flipped claim is false at
        // init.
        if !cert.restored.is_empty() {
            let mut mutant = cert.clone();
            mutant.restored[0].1 = !mutant.restored[0].1;
            assert!(
                matches!(
                    check_certificate(&task, &mutant),
                    Err(Rejection::InitViolated { .. })
                ),
                "seed {seed}: flipped restored literal must fail initiation"
            );
            flipped_restored += 1;
        }

        match &cert.kind {
            // Dropping every clause (and survivor) leaves only the
            // restored constants, which never constrain the live
            // counter — yet the bad predicate is satisfiable in the raw
            // state space, so the gutted invariant cannot imply safety.
            CertKind::Inductive { blocked } if !blocked.is_empty() => {
                let mut mutant = cert.clone();
                mutant.survivors.clear();
                mutant.kind = CertKind::Inductive { blocked: vec![] };
                assert!(
                    matches!(check_certificate(&task, &mutant), Err(Rejection::NotSafe)),
                    "seed {seed}: dropping every clause must break inv ⊆ safe"
                );
                weakened += 1;
            }
            CertKind::Inductive { .. } => {}
            // `k = 0` claims nothing.
            CertKind::KInduction { .. } => {
                let mut mutant = cert.clone();
                mutant.kind = CertKind::KInduction { k: 0 };
                assert!(
                    matches!(check_certificate(&task, &mutant), Err(Rejection::ZeroK)),
                    "seed {seed}: k = 0 must be rejected"
                );
                zeroed_k += 1;
            }
        }
    }
    assert!(proofs > 0, "no seed produced a proof to tamper with");
    assert!(
        flipped_restored > 0,
        "no certificate carried a restored constant (sweep never fired?)"
    );
    assert!(
        weakened + zeroed_k > 0,
        "no certificate carried clauses or a k to strip"
    );
}

#[test]
fn tampered_witnesses_are_rejected() {
    let mut attacks = 0usize;
    for seed in 0..SEEDS {
        let task = task(seed);
        let report = check_safety(&task, &opts());
        let Verdict::Attack(trace) = &report.verdict else {
            continue;
        };
        attacks += 1;

        // Emptied trace: no cycles, no bad state.
        let mut gutted: Trace = (**trace).clone();
        gutted.inputs.clear();
        assert!(
            matches!(
                check_witness(&task.aig, &Witness::new(gutted)),
                Err(Rejection::EmptyTrace)
            ),
            "seed {seed}: an empty trace must be rejected"
        );

        // Truncated trace: BMC counterexamples are depth-minimal, so
        // chopping the final cycle leaves a run that never goes bad.
        let mut cut: Trace = (**trace).clone();
        cut.inputs.pop();
        let check = check_witness(&task.aig, &Witness::new(cut));
        assert!(
            check.is_err(),
            "seed {seed}: a truncated trace must be rejected, got {check:?}"
        );

        // An input index the netlist does not have.
        let mut alien: Trace = (**trace).clone();
        let cycle: &mut HashMap<u32, bool> = &mut alien.inputs[0];
        cycle.insert(task.aig.num_inputs() as u32 + 3, true);
        assert!(
            matches!(
                check_witness(&task.aig, &Witness::new(alien)),
                Err(Rejection::InputOutOfRange { .. })
            ),
            "seed {seed}: an out-of-range input must be rejected"
        );
    }
    assert!(attacks > 0, "no seed produced an attack to tamper with");
}

//! Transition-system view of a netlist.
//!
//! [`TransitionSystem`] wraps an [`Aig`] with its cone-of-influence
//! reduction: the set of latches and inputs that can affect the
//! verification roots (assumes + bad bits). Engines iterate over the
//! *active* latches/inputs only, which is the main scalability lever the
//! paper attributes to removing the two single-cycle machines — dead logic
//! simply never reaches the solver.

use csl_hdl::{Aig, Bit, CoiMarks, Init};

/// A netlist plus cone-of-influence bookkeeping.
pub struct TransitionSystem {
    aig: Aig,
    coi: CoiMarks,
    active_latches: Vec<u32>,
    active_inputs: Vec<u32>,
}

impl TransitionSystem {
    /// Builds the system, computing the cone of influence of all assumes
    /// and bad bits. Probes are kept alive too when `keep_probes` (useful
    /// for readable traces; slightly larger encodings).
    ///
    /// # Panics
    /// Panics if the netlist has unsealed latches.
    pub fn new(aig: Aig, keep_probes: bool) -> TransitionSystem {
        aig.validate()
            .unwrap_or_else(|names| panic!("unsealed latches: {names:?}"));
        let coi = aig.cone_of_influence(keep_probes);
        let mut active_latches = Vec::new();
        for (i, l) in aig.latches().iter().enumerate() {
            if coi.contains(l.output) {
                active_latches.push(i as u32);
            }
        }
        let mut active_inputs = Vec::new();
        for (i, inp) in aig.inputs().iter().enumerate() {
            if coi.contains(inp.output) {
                active_inputs.push(i as u32);
            }
        }
        TransitionSystem {
            aig,
            coi,
            active_latches,
            active_inputs,
        }
    }

    /// The underlying netlist.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Latch indices inside the cone of influence.
    pub fn active_latches(&self) -> &[u32] {
        &self.active_latches
    }

    /// Input indices inside the cone of influence.
    pub fn active_inputs(&self) -> &[u32] {
        &self.active_inputs
    }

    /// Whether `b`'s node is in the cone of influence.
    pub fn in_coi(&self, b: Bit) -> bool {
        self.coi.contains(b)
    }

    /// Initial value of latch `idx` as a concrete bool, or `None` when
    /// symbolic.
    pub fn latch_init(&self, idx: u32) -> Option<bool> {
        match self.aig.latches()[idx as usize].init {
            Init::Zero => Some(false),
            Init::One => Some(true),
            Init::Symbolic => None,
        }
    }

    /// Summary line for logs and the Table 1 inventory.
    pub fn summary(&self) -> String {
        format!(
            "{} ands, {}/{} latches in COI, {}/{} inputs in COI, {} assumes, {} bads",
            self.aig.num_ands(),
            self.active_latches.len(),
            self.aig.num_latches(),
            self.active_inputs.len(),
            self.aig.num_inputs(),
            self.aig.assumes().len(),
            self.aig.bads().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::Design;

    #[test]
    fn coi_prunes_dead_state() {
        let mut d = Design::new("t");
        let live = d.reg("live", 2, Init::Zero);
        let dead = d.reg("dead", 8, Init::Zero);
        let next = d.add_const(&live.q(), 1);
        d.set_next(&live, next);
        let dnext = d.add_const(&dead.q(), 3);
        d.set_next(&dead, dnext);
        let flag = d.eq_const(&live.q(), 3);
        d.assert_always("live_lt3", flag.not());
        let ts = TransitionSystem::new(d.finish(), false);
        assert_eq!(ts.active_latches().len(), 2);
        assert_eq!(ts.aig().num_latches(), 10);
    }

    #[test]
    fn keep_probes_enlarges_cone() {
        let mut d = Design::new("t");
        let r = d.reg("r", 4, Init::Zero);
        d.hold(&r);
        let q = r.q();
        d.probe("r", &q);
        let t = csl_hdl::Bit::TRUE;
        d.assert_always("trivial", t);
        let without = TransitionSystem::new(
            {
                let mut d2 = Design::new("t");
                let r2 = d2.reg("r", 4, Init::Zero);
                d2.hold(&r2);
                let q2 = r2.q();
                d2.probe("r", &q2);
                d2.assert_always("trivial", csl_hdl::Bit::TRUE);
                d2.finish()
            },
            false,
        );
        let with = TransitionSystem::new(d.finish(), true);
        assert_eq!(without.active_latches().len(), 0);
        assert_eq!(with.active_latches().len(), 4);
    }

    #[test]
    fn latch_init_reporting() {
        let mut d = Design::new("t");
        let a = d.reg("a", 1, Init::Zero);
        let b = d.reg("b", 1, Init::Symbolic);
        d.hold(&a);
        d.hold(&b);
        let ts = TransitionSystem::new(d.finish(), false);
        assert_eq!(ts.latch_init(0), Some(false));
        assert_eq!(ts.latch_init(1), None);
    }
}

//! Transition-system view of a netlist.
//!
//! [`TransitionSystem`] wraps an [`Aig`] with its cone-of-influence
//! reduction: the set of latches and inputs that can affect the
//! verification roots (assumes + bad bits). Engines iterate over the
//! *active* latches/inputs only, which is the main scalability lever the
//! paper attributes to removing the two single-cycle machines — dead logic
//! simply never reaches the solver.

use std::sync::Arc;

use csl_hdl::{Aig, Bit, CoiMarks, Init, Node};

/// A netlist plus cone-of-influence bookkeeping.
pub struct TransitionSystem {
    aig: Aig,
    coi: CoiMarks,
    active_latches: Vec<u32>,
    active_inputs: Vec<u32>,
}

impl TransitionSystem {
    /// Builds the system, computing the cone of influence of all assumes
    /// and bad bits. Probes are kept alive too when `keep_probes` (useful
    /// for readable traces; slightly larger encodings).
    ///
    /// # Panics
    /// Panics if the netlist has unsealed latches.
    pub fn new(aig: Aig, keep_probes: bool) -> TransitionSystem {
        aig.validate()
            .unwrap_or_else(|names| panic!("unsealed latches: {names:?}"));
        let coi = aig.cone_of_influence(keep_probes);
        let mut active_latches = Vec::new();
        for (i, l) in aig.latches().iter().enumerate() {
            if coi.contains(l.output) {
                active_latches.push(i as u32);
            }
        }
        let mut active_inputs = Vec::new();
        for (i, inp) in aig.inputs().iter().enumerate() {
            if coi.contains(inp.output) {
                active_inputs.push(i as u32);
            }
        }
        TransitionSystem {
            aig,
            coi,
            active_latches,
            active_inputs,
        }
    }

    /// [`TransitionSystem::new`] wrapped in the [`Arc`] every engine and
    /// [`crate::Unroller`] takes — sessions are ownable (they can outlive
    /// the engine call that created them), so the system is shared, not
    /// borrowed.
    pub fn shared(aig: Aig, keep_probes: bool) -> Arc<TransitionSystem> {
        Arc::new(TransitionSystem::new(aig, keep_probes))
    }

    /// A structural fingerprint of the netlist: two systems with the same
    /// fingerprint encode the same gates, latches (with init values and
    /// next-state functions), assumes and bad bits, so a solver session
    /// built against one is sound to reuse against the other. Keys the
    /// warm-start pool (see [`crate::warm`]). FNV-1a over the node table;
    /// names are deliberately excluded (renaming a probe must not defeat
    /// warm reuse).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.aig.num_nodes() as u64);
        for n in 0..self.aig.num_nodes() as u32 {
            match self.aig.node(Bit::from_packed(n << 1)) {
                Node::Const => eat(1),
                Node::Input(i) => eat(2 | ((i as u64) << 8)),
                Node::Latch(li) => {
                    let l = &self.aig.latches()[li as usize];
                    let init = match l.init {
                        Init::Zero => 0u64,
                        Init::One => 1,
                        Init::Symbolic => 2,
                    };
                    let next = l.next.map_or(u64::MAX, |b| b.packed() as u64);
                    eat(3 | (init << 8) | (next << 16));
                }
                Node::And(x, y) => {
                    eat(4 | ((x.packed() as u64) << 8));
                    eat(y.packed() as u64);
                }
            }
        }
        for &a in self.aig.assumes() {
            eat(5 | ((a.packed() as u64) << 8));
        }
        for b in self.aig.bads() {
            eat(6 | ((b.bit.packed() as u64) << 8));
        }
        // The cone of influence is derived but depends on `keep_probes`,
        // which is not in the node table — hash the active sets so systems
        // built with different probe policies never share sessions.
        for &li in &self.active_latches {
            eat(7 | ((li as u64) << 8));
        }
        for &ii in &self.active_inputs {
            eat(8 | ((ii as u64) << 8));
        }
        h
    }

    /// The underlying netlist.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Latch indices inside the cone of influence.
    pub fn active_latches(&self) -> &[u32] {
        &self.active_latches
    }

    /// Input indices inside the cone of influence.
    pub fn active_inputs(&self) -> &[u32] {
        &self.active_inputs
    }

    /// Whether `b`'s node is in the cone of influence.
    pub fn in_coi(&self, b: Bit) -> bool {
        self.coi.contains(b)
    }

    /// Initial value of latch `idx` as a concrete bool, or `None` when
    /// symbolic.
    pub fn latch_init(&self, idx: u32) -> Option<bool> {
        match self.aig.latches()[idx as usize].init {
            Init::Zero => Some(false),
            Init::One => Some(true),
            Init::Symbolic => None,
        }
    }

    /// Summary line for logs and the Table 1 inventory.
    pub fn summary(&self) -> String {
        format!(
            "{} ands, {}/{} latches in COI, {}/{} inputs in COI, {} assumes, {} bads",
            self.aig.num_ands(),
            self.active_latches.len(),
            self.aig.num_latches(),
            self.active_inputs.len(),
            self.aig.num_inputs(),
            self.aig.assumes().len(),
            self.aig.bads().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::Design;

    #[test]
    fn coi_prunes_dead_state() {
        let mut d = Design::new("t");
        let live = d.reg("live", 2, Init::Zero);
        let dead = d.reg("dead", 8, Init::Zero);
        let next = d.add_const(&live.q(), 1);
        d.set_next(&live, next);
        let dnext = d.add_const(&dead.q(), 3);
        d.set_next(&dead, dnext);
        let flag = d.eq_const(&live.q(), 3);
        d.assert_always("live_lt3", flag.not());
        let ts = TransitionSystem::new(d.finish(), false);
        assert_eq!(ts.active_latches().len(), 2);
        assert_eq!(ts.aig().num_latches(), 10);
    }

    #[test]
    fn keep_probes_enlarges_cone() {
        let mut d = Design::new("t");
        let r = d.reg("r", 4, Init::Zero);
        d.hold(&r);
        let q = r.q();
        d.probe("r", &q);
        let t = csl_hdl::Bit::TRUE;
        d.assert_always("trivial", t);
        let without = TransitionSystem::new(
            {
                let mut d2 = Design::new("t");
                let r2 = d2.reg("r", 4, Init::Zero);
                d2.hold(&r2);
                let q2 = r2.q();
                d2.probe("r", &q2);
                d2.assert_always("trivial", csl_hdl::Bit::TRUE);
                d2.finish()
            },
            false,
        );
        let with = TransitionSystem::new(d.finish(), true);
        assert_eq!(without.active_latches().len(), 0);
        assert_eq!(with.active_latches().len(), 4);
    }

    #[test]
    fn latch_init_reporting() {
        let mut d = Design::new("t");
        let a = d.reg("a", 1, Init::Zero);
        let b = d.reg("b", 1, Init::Symbolic);
        d.hold(&a);
        d.hold(&b);
        let ts = TransitionSystem::new(d.finish(), false);
        assert_eq!(ts.latch_init(0), Some(false));
        assert_eq!(ts.latch_init(1), None);
    }
}

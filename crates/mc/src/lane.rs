//! Per-lane budget shaping for the engine portfolio.
//!
//! The paper's JasperGold workflow gives every engine the same 7-day
//! clock; the ROADMAP's "portfolio-aware budget shaping" item asks for
//! finer control: give the attack-finding BMC lane a *depth schedule*
//! (sweep shallow depths on a short fuse before committing to the deep
//! search) and a wall-clock cap, while PDR keeps the full clock. A
//! [`LanePlan`] captures that: one optional [`LaneBudget`] per [`Lane`],
//! threaded through [`crate::CheckOptions::lanes`] into both execution
//! modes of [`crate::check_safety`]:
//!
//! * **portfolio** — each racing lane's deadline is the earlier of the
//!   shared deadline and its own wall cap; the BMC lane walks its depth
//!   schedule instead of a single full-depth pass;
//! * **sequential** — each phase is capped by its lane wall, and a phase
//!   that exhausts *its own* cap (rather than the global clock) is
//!   skipped with a note instead of timing out the whole check.
//!
//! The default plan is empty (no caps, no schedule) and reproduces the
//! previous behaviour exactly.

use std::time::{Duration, Instant};

/// One engine lane of the portfolio.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Bounded model checking — the attack-finding lane.
    Bmc,
    /// k-induction on the lemma-free netlist.
    KInduction,
    /// IC3/property-directed reachability.
    Pdr,
    /// Houdini invariant filtering (plus its strengthened re-runs).
    Houdini,
    /// Differential fuzzing on the bit-parallel simulator (extra
    /// attack-finding lanes registered through
    /// [`crate::CheckOptions::extra_lanes`]).
    Fuzz,
}

impl Lane {
    /// All lanes, in pipeline order.
    pub const ALL: [Lane; 5] = [
        Lane::Bmc,
        Lane::KInduction,
        Lane::Pdr,
        Lane::Houdini,
        Lane::Fuzz,
    ];

    /// Stable lower-case label (used in notes and serialized reports).
    pub fn name(self) -> &'static str {
        match self {
            Lane::Bmc => "bmc",
            Lane::KInduction => "k-induction",
            Lane::Pdr => "pdr",
            Lane::Houdini => "houdini",
            Lane::Fuzz => "fuzz",
        }
    }

    /// Inverse of [`Lane::name`] (used when reading persisted reports).
    pub fn from_name(name: &str) -> Option<Lane> {
        Lane::ALL.into_iter().find(|l| l.name() == name)
    }

    fn index(self) -> usize {
        match self {
            Lane::Bmc => 0,
            Lane::KInduction => 1,
            Lane::Pdr => 2,
            Lane::Houdini => 3,
            Lane::Fuzz => 4,
        }
    }
}

/// Per-lane participation in the clause/lemma exchange bus (only
/// meaningful when [`crate::CheckOptions::exchange`] enables the bus).
/// The default participates both ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneExchange {
    /// Pull foreign clauses/lemmas off the bus between SAT queries.
    pub import: bool,
    /// Publish this lane's learnt clauses / proven lemmas.
    pub export: bool,
}

impl Default for LaneExchange {
    fn default() -> LaneExchange {
        LaneExchange {
            import: true,
            export: true,
        }
    }
}

/// Budget shaping for one lane.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneBudget {
    /// Wall-clock cap for this lane, measured from the start of the check
    /// (`None` = the lane inherits the full shared clock).
    pub wall: Option<Duration>,
    /// Progressive depth schedule (meaningful for [`Lane::Bmc`] only):
    /// the lane checks each depth in order, splitting its wall clock
    /// evenly across the remaining steps, and stops at the first
    /// counterexample. Empty = one pass at `CheckOptions::bmc_depth`.
    pub depth_schedule: Vec<usize>,
    /// Exchange-bus participation (import/export opt-outs).
    pub exchange: LaneExchange,
}

impl LaneBudget {
    /// A wall-clock cap alone.
    pub fn wall(cap: Duration) -> LaneBudget {
        LaneBudget {
            wall: Some(cap),
            ..LaneBudget::default()
        }
    }

    /// A depth schedule alone (BMC lane).
    pub fn depths(schedule: &[usize]) -> LaneBudget {
        LaneBudget {
            depth_schedule: schedule.to_vec(),
            ..LaneBudget::default()
        }
    }

    /// Adds a wall-clock cap (builder style).
    pub fn with_wall(mut self, cap: Duration) -> LaneBudget {
        self.wall = Some(cap);
        self
    }

    /// Adds a depth schedule (builder style).
    pub fn with_depths(mut self, schedule: &[usize]) -> LaneBudget {
        self.depth_schedule = schedule.to_vec();
        self
    }

    /// Sets this lane's exchange-bus participation (builder style).
    pub fn with_exchange(mut self, exchange: LaneExchange) -> LaneBudget {
        self.exchange = exchange;
        self
    }

    fn is_default(&self) -> bool {
        self.wall.is_none()
            && self.depth_schedule.is_empty()
            && self.exchange == LaneExchange::default()
    }
}

/// Per-lane budgets for one `check_safety` run. The default plan leaves
/// every lane on the shared clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LanePlan {
    slots: [LaneBudget; 5],
}

impl LanePlan {
    /// The empty plan: every lane inherits the shared clock.
    pub fn new() -> LanePlan {
        LanePlan::default()
    }

    /// True when no lane carries a cap or schedule.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|b| b.is_default())
    }

    /// This lane's budget.
    pub fn get(&self, lane: Lane) -> &LaneBudget {
        &self.slots[lane.index()]
    }

    /// Replaces a lane's budget.
    pub fn set(&mut self, lane: Lane, budget: LaneBudget) {
        self.slots[lane.index()] = budget;
    }

    /// Replaces a lane's budget (builder style).
    pub fn with(mut self, lane: Lane, budget: LaneBudget) -> LanePlan {
        self.set(lane, budget);
        self
    }

    /// The lane's effective deadline: its wall cap measured from `start`,
    /// clipped to the shared `deadline`.
    pub fn deadline_for(&self, lane: Lane, start: Instant, deadline: Instant) -> Instant {
        match self.get(lane).wall {
            Some(cap) => (start + cap).min(deadline),
            None => deadline,
        }
    }

    /// Whether a timeout in this lane can be local (its own cap fired
    /// while the shared clock still runs).
    pub fn is_capped(&self, lane: Lane) -> bool {
        self.get(lane).wall.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_inherits_deadline() {
        let plan = LanePlan::default();
        assert!(plan.is_empty());
        let start = Instant::now();
        let deadline = start + Duration::from_secs(10);
        for lane in Lane::ALL {
            assert_eq!(plan.deadline_for(lane, start, deadline), deadline);
            assert!(!plan.is_capped(lane));
        }
    }

    #[test]
    fn wall_cap_clips_to_shared_deadline() {
        let plan = LanePlan::new()
            .with(Lane::Bmc, LaneBudget::wall(Duration::from_secs(2)))
            .with(Lane::Pdr, LaneBudget::wall(Duration::from_secs(60)));
        assert!(!plan.is_empty());
        let start = Instant::now();
        let deadline = start + Duration::from_secs(10);
        assert_eq!(
            plan.deadline_for(Lane::Bmc, start, deadline),
            start + Duration::from_secs(2)
        );
        // A cap beyond the shared clock never extends it.
        assert_eq!(plan.deadline_for(Lane::Pdr, start, deadline), deadline);
        assert_eq!(
            plan.deadline_for(Lane::KInduction, start, deadline),
            deadline
        );
    }

    #[test]
    fn lane_budget_builders_compose() {
        let b = LaneBudget::depths(&[4, 8, 16]).with_wall(Duration::from_secs(5));
        assert_eq!(b.depth_schedule, vec![4, 8, 16]);
        assert_eq!(b.wall, Some(Duration::from_secs(5)));
        let plan = LanePlan::new().with(Lane::Bmc, b.clone());
        assert_eq!(plan.get(Lane::Bmc), &b);
    }

    #[test]
    fn exchange_opt_out_makes_plan_non_empty() {
        let quiet = LaneBudget::default().with_exchange(LaneExchange {
            import: true,
            export: false,
        });
        let plan = LanePlan::new().with(Lane::Bmc, quiet);
        assert!(!plan.is_empty(), "an exchange opt-out is a real setting");
        assert!(!plan.get(Lane::Bmc).exchange.export);
        assert!(plan.get(Lane::Pdr).exchange.import, "default participates");
    }
}

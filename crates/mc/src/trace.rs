//! Counterexample traces.
//!
//! A [`Trace`] is a finite input sequence plus an initial assignment of
//! (symbolic) latches that drives the design to a bad state. Traces come
//! out of the SAT model of a BMC query and can be replayed on the concrete
//! simulator ([`crate::sim::Sim::replay`]) and rendered as a waveform table
//! over the design's probes — this is the "attack listing" the paper shows
//! in §7.1.4.

use std::collections::HashMap;
use std::fmt::Write as _;

use csl_hdl::xform::Reconstruction;
use csl_hdl::Aig;

use crate::sim::{Sim, SimState};

/// A finite counterexample.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Initial values for latches (only those the solver constrained,
    /// typically the cone-of-influence subset; others default to reset).
    pub initial_latches: Vec<(u32, bool)>,
    /// Input assignments per cycle (input index → value).
    pub inputs: Vec<HashMap<u32, bool>>,
    /// Name of the bad bit that fired at the last cycle.
    pub bad_name: String,
}

impl Trace {
    /// Number of cycles (the bad state is observed in the last one).
    pub fn depth(&self) -> usize {
        self.inputs.len()
    }

    /// Input `idx`'s value at `cycle`, if the solver constrained it.
    pub fn input(&self, cycle: usize, idx: u32) -> Option<bool> {
        self.inputs.get(cycle).and_then(|m| m.get(&idx)).copied()
    }

    /// Re-expresses a trace found on a prepared (reduced) netlist in the
    /// original netlist's latch/input indices, via the
    /// [`Reconstruction`] the preparation pipeline emitted. Latches and
    /// inputs the reduction removed are simply unconstrained in the
    /// lifted trace — sound, because a removed latch either cannot
    /// influence any assume/bad bit or provably holds its reset value,
    /// so the original netlist reproduces the behaviour from reset on
    /// its own (the lifted trace replays to the same bad-state hit).
    pub fn lifted(&self, recon: &Reconstruction) -> Trace {
        Trace {
            initial_latches: self
                .initial_latches
                .iter()
                .filter_map(|&(i, v)| Some((recon.original_latch(i)?, v)))
                .collect(),
            inputs: self
                .inputs
                .iter()
                .map(|cycle| {
                    cycle
                        .iter()
                        .filter_map(|(&i, &v)| Some((recon.original_input(i)?, v)))
                        .collect()
                })
                .collect(),
            bad_name: self.bad_name.clone(),
        }
    }

    /// Renders the trace as a waveform table over the design's probes.
    /// One row per probe, one column per cycle, values in hex.
    pub fn render(&self, aig: &Aig) -> String {
        let mut sim = Sim::new(aig);
        let mut state = SimState::reset(aig);
        for &(i, v) in &self.initial_latches {
            state.set_latch(i as usize, v);
        }
        let mut columns: Vec<Vec<u64>> = Vec::new();
        for cycle in 0..self.depth() {
            let r = sim.step(&state, |i, _| self.input(cycle, i as u32).unwrap_or(false));
            columns.push(
                aig.probes()
                    .iter()
                    .map(|p| r.values.word(&p.bits))
                    .collect(),
            );
            state = r.next;
        }
        let name_w = aig
            .probes()
            .iter()
            .map(|p| p.name.len())
            .max()
            .unwrap_or(4)
            .max(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "counterexample for `{}` ({} cycles)",
            self.bad_name,
            self.depth()
        );
        let _ = write!(out, "{:name_w$} |", "probe");
        for c in 0..self.depth() {
            let _ = write!(out, " c{c:<3}");
        }
        let _ = writeln!(out);
        for (pi, p) in aig.probes().iter().enumerate() {
            let _ = write!(out, "{:name_w$} |", p.name);
            for col in &columns {
                let _ = write!(out, " {:<4x}", col[pi]);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    #[test]
    fn render_includes_probe_rows() {
        let mut d = Design::new("t");
        let r = d.reg("r", 4, Init::Zero);
        let nxt = d.add_const(&r.q(), 1);
        d.set_next(&r, nxt);
        let q = r.q();
        d.probe("r", &q);
        d.assert_always("x", csl_hdl::Bit::TRUE);
        let aig = d.finish();
        let tr = Trace {
            initial_latches: vec![],
            inputs: vec![HashMap::new(); 3],
            bad_name: "x".into(),
        };
        let text = tr.render(&aig);
        assert!(text.contains("r"));
        assert!(text.contains("c2"));
    }

    #[test]
    fn input_lookup() {
        let mut m = HashMap::new();
        m.insert(3u32, true);
        let tr = Trace {
            initial_latches: vec![],
            inputs: vec![m],
            bad_name: String::new(),
        };
        assert_eq!(tr.input(0, 3), Some(true));
        assert_eq!(tr.input(0, 4), None);
        assert_eq!(tr.input(1, 3), None);
    }
}

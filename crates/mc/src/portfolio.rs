//! Portfolio execution: verification backends racing on threads, with a
//! shared lemma/clause exchange bus.
//!
//! The paper's JasperGold workflow (§6) runs an attack-finding engine and
//! several proof engines against the same instrumented design under one
//! wall-clock budget. The sequential pipeline in [`crate::engine`] burns
//! that budget one engine at a time; this module instead races every
//! backend on its own `std::thread` worker — first decisive verdict wins —
//! with cooperative cancellation: the shared [`AtomicBool`] stop flag is
//! threaded through [`csl_sat::Budget`], so the losers' in-flight SAT
//! queries abort at their next conflict boundary instead of running to
//! their own timeouts.
//!
//! **Backend API v2:** a lane is a [`Backend`], whose `run` receives a
//! [`SharedContext`] handle on the [`crate::exchange`] bus in addition to
//! the transition system and budget. With the bus enabled
//! ([`ExchangeConfig::enabled`]), the BMC lane publishes learnt clauses at
//! conflict boundaries, the Houdini lane streams survivor lemmas the
//! moment its consecution fixpoint lands, and k-induction/PDR poll the
//! bus between SAT queries to strengthen their *running* solvers in
//! place. With the bus disabled every context is inert and the race is
//! the isolated-lane portfolio of v1.
//!
//! Verdict semantics match the sequential pipeline: an attack
//! counterexample beats a proof, a proof beats a timeout, and Houdini
//! survivors still strengthen k-induction/PDR — over the bus when it is
//! on, and through the lane's own strengthened re-runs either way (the
//! re-runs stay as insurance for proof engines that finished before the
//! lemmas arrived).
//!
//! Proof outcomes carry optional [`Certificate`] material (the engine's
//! inductive invariant / closing `k`) so the report layer can attach a
//! checkable artifact; a lane that leaned on imported bus facts ships
//! its proof without one, since those facts are not self-contained.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use csl_hdl::Aig;
use csl_sat::Budget;

use crate::bmc::{bmc, BmcResult, BmcSession};
use crate::cert::{CertKind, Certificate};
use crate::engine::{CoverageStats, FuzzStats, InconclusiveReason, ProofEngine};
use crate::exchange::{Exchange, ExchangeConfig, ExchangeStats, SharedContext};
use crate::houdini::{houdini_with, Candidate, HoudiniResult};
use crate::kind::{KindResult, KindSession};
use crate::lane::Lane;
use crate::pdr::{pdr_with_stats, PdrOptions, PdrResult};
use crate::sim::Sim;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::warm::{LaneSolverStats, WarmPool};

/// What a single backend produced. [`EngineOutcome::Attack`] and
/// [`EngineOutcome::Proof`] are decisive: the first of either ends the
/// race and cancels the other lanes.
#[derive(Debug)]
pub enum EngineOutcome {
    /// A replay-validated counterexample.
    Attack(Box<Trace>),
    /// An unbounded proof, with its checkable certificate material when
    /// the proof is self-contained (no exchange-bus imports).
    Proof(ProofEngine, Option<Box<Certificate>>),
    /// Finished inside the budget without a verdict (bounded-clean BMC,
    /// induction that never closed, PDR frame cap, …).
    Inconclusive(InconclusiveReason),
    /// Budget exhausted or canceled by a winning sibling.
    Timeout,
}

impl EngineOutcome {
    pub fn is_decisive(&self) -> bool {
        matches!(self, EngineOutcome::Attack(_) | EngineOutcome::Proof(..))
    }
}

/// One lane of the portfolio, v2: a named engine that checks a
/// transition system under a (cancellable) budget, publishing to and
/// importing from the exchange bus through `ctx`. Implementations must
/// validate their own counterexamples (replay on the concrete simulator)
/// before reporting [`EngineOutcome::Attack`], and must only publish
/// facts implied by the shared instance (see [`crate::exchange`] for the
/// soundness rules the built-in backends follow).
pub trait Backend: Send {
    fn name(&self) -> &'static str;
    /// The budget/exchange lane this backend occupies.
    fn lane(&self) -> Lane;
    /// The system arrives behind an [`Arc`] so a backend can park its
    /// solver session (which owns a clone of the `Arc`) in the
    /// [`WarmPool`] when its run ends undecided.
    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome;

    /// Campaign statistics for fuzzing lanes, read *after* `run` returns
    /// (implementations record them internally). Solver lanes keep the
    /// default `None`; the race copies the value into its
    /// [`LaneResult`] so the stats reach [`crate::CheckReport::fuzz`].
    fn fuzz_stats(&self) -> Option<FuzzStats> {
        None
    }

    /// Solver activity of the last `run`, read *after* it returns —
    /// the SAT-lane counterpart of [`Backend::fuzz_stats`]. Non-solver
    /// lanes keep the default `None`; the race copies the value into
    /// [`LaneResult::solver`] so it reaches
    /// [`crate::CheckReport::solver`].
    fn solver_stats(&self) -> Option<LaneSolverStats> {
        None
    }

    /// Coverage accounting of the last `run`, read *after* it returns —
    /// populated only by coverage-guided fuzzing lanes. The race copies
    /// the value into [`LaneResult::coverage`] so it reaches
    /// [`crate::CheckReport::coverage`].
    fn coverage_stats(&self) -> Option<CoverageStats> {
        None
    }
}

/// A cloneable constructor for caller-supplied lanes, registered through
/// [`crate::CheckOptions::extra_lanes`]. `CheckOptions` must stay
/// `Clone`, and a `Box<dyn Backend>` is not — so options carry factories
/// and each check (each portfolio race, each sequential phase 0) builds
/// a fresh backend. The label identifies the lane configuration in
/// session cache keys, so it must change whenever the produced backend's
/// behaviour does.
#[derive(Clone)]
pub struct LaneFactory {
    label: String,
    make: Arc<dyn Fn() -> Box<dyn Backend> + Send + Sync>,
}

impl LaneFactory {
    pub fn new(
        label: impl Into<String>,
        make: impl Fn() -> Box<dyn Backend> + Send + Sync + 'static,
    ) -> LaneFactory {
        LaneFactory {
            label: label.into(),
            make: Arc::new(make),
        }
    }

    /// Stable description of the lane configuration (cache-key input).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Builds a fresh backend instance.
    pub fn build(&self) -> Box<dyn Backend> {
        (self.make)()
    }
}

impl std::fmt::Debug for LaneFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LaneFactory({})", self.label)
    }
}

/// Checks out a warm session with `checkout`, or builds one with
/// `build`; returns the session plus its `(warm_hits, warm_misses)`
/// accounting. `enabled = false` builds cold and counts nothing.
fn warm_or_build<S>(
    enabled: bool,
    checkout: impl FnOnce() -> Option<S>,
    build: impl FnOnce() -> S,
) -> (S, u64, u64) {
    if !enabled {
        return (build(), 0, 0);
    }
    match checkout() {
        Some(s) => (s, 1, 0),
        None => (build(), 0, 1),
    }
}

/// Validates a trace by concrete replay; decisive only if the replay
/// satisfies the assumptions and fires a bad bit.
fn validated_attack(ts: &TransitionSystem, trace: Box<Trace>, engine: &str) -> EngineOutcome {
    let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&trace);
    if assumes_ok && bad {
        EngineOutcome::Attack(trace)
    } else {
        EngineOutcome::Inconclusive(InconclusiveReason::ReplayFailed {
            engine: engine.to_string(),
        })
    }
}

/// Bounded model checking — the attack-finding lane (the paper's `Ht`).
/// With the bus on it exports learnt clauses and prunes with imported
/// lemmas.
///
/// The lane drives a single [`BmcSession`] across its whole depth
/// schedule, so each step continues the previous step's unrolling
/// instead of re-encoding from frame 0. With [`BmcBackend::warm`] the
/// session additionally comes from / returns to the global
/// [`WarmPool`], surviving into the next engine call on the same
/// netlist.
pub struct BmcBackend {
    pub depth: usize,
    /// Progressive depth schedule from the lane plan: each step gets an
    /// even share of the lane's remaining clock, deeper steps inherit
    /// whatever earlier steps left over, and the first counterexample
    /// ends the walk. Empty = one pass at `depth`.
    pub schedule: Vec<usize>,
    warm: bool,
    stats: Mutex<Option<LaneSolverStats>>,
}

impl BmcBackend {
    /// A cold lane running one pass at `depth`.
    pub fn new(depth: usize) -> BmcBackend {
        BmcBackend {
            depth,
            schedule: Vec::new(),
            warm: false,
            stats: Mutex::new(None),
        }
    }

    /// Sets the progressive depth schedule (builder style).
    pub fn schedule(mut self, schedule: Vec<usize>) -> BmcBackend {
        self.schedule = schedule;
        self
    }

    /// Enables cross-call session reuse through [`WarmPool::global`].
    pub fn warm(mut self, warm: bool) -> BmcBackend {
        self.warm = warm;
        self
    }

    fn drive(
        &self,
        session: &mut BmcSession,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome {
        if self.schedule.is_empty() {
            return match session.run_to(self.depth, budget, ctx) {
                // The sequential pipeline reports a BMC cex as an attack even
                // if the replay check fails (with a warning note); mirror that
                // here so the two modes cannot diverge on verdict kind.
                BmcResult::Cex(trace) => EngineOutcome::Attack(trace),
                BmcResult::Clean { depth_checked } => {
                    EngineOutcome::Inconclusive(InconclusiveReason::BoundedClean {
                        depth: depth_checked,
                    })
                }
                BmcResult::Timeout { .. } => EngineOutcome::Timeout,
            };
        }
        let lane_deadline = budget.deadline;
        let mut clean_to: Option<usize> = None;
        for (i, &depth) in self.schedule.iter().enumerate() {
            // Split the remaining lane clock evenly over the remaining
            // steps; the final step always gets everything that is left.
            let step_budget = match lane_deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return EngineOutcome::Timeout;
                    }
                    let steps_left = (self.schedule.len() - i) as u32;
                    let step_deadline = now + (dl - now) / steps_left;
                    Budget {
                        deadline: Some(step_deadline),
                        ..budget.clone()
                    }
                }
                None => budget.clone(),
            };
            match session.run_to(depth, step_budget, ctx) {
                BmcResult::Cex(trace) => return EngineOutcome::Attack(trace),
                BmcResult::Clean { depth_checked } => clean_to = Some(depth_checked),
                BmcResult::Timeout { depth_checked } => {
                    clean_to = depth_checked.or(clean_to);
                    // A step timeout only ends the lane when its *lane*
                    // clock (not just the step slice) is gone.
                    if budget.out_of_time() || budget.stop_requested() {
                        return EngineOutcome::Timeout;
                    }
                }
            }
        }
        match clean_to {
            Some(d) => EngineOutcome::Inconclusive(InconclusiveReason::BoundedClean { depth: d }),
            None => EngineOutcome::Timeout,
        }
    }
}

impl Backend for BmcBackend {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn lane(&self) -> Lane {
        Lane::Bmc
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome {
        let pool = WarmPool::global();
        let (mut session, hits, misses) = warm_or_build(
            self.warm,
            || pool.checkout_bmc(ts.fingerprint()),
            || BmcSession::new(ts),
        );
        let snapshot = session.solver_stats();
        let outcome = self.drive(&mut session, budget, ctx);
        let mut stats = LaneSolverStats::delta(Lane::Bmc, snapshot, session.solver_stats());
        stats.warm_hits = hits;
        stats.warm_misses = misses;
        *self.stats.lock().unwrap() = Some(stats);
        if self.warm && !outcome.is_decisive() {
            pool.park_bmc(session);
        }
        outcome
    }

    fn solver_stats(&self) -> Option<LaneSolverStats> {
        *self.stats.lock().unwrap()
    }
}

/// k-induction on the plain (lemma-free) netlist; with the bus on it
/// imports shared clauses into its base instance and lemmas into both.
/// With [`KindBackend::warm`] the base/step [`KindSession`] pair is
/// parked in the global [`WarmPool`] on an `Unknown` outcome and a later
/// call on the same netlist resumes the sweep at its old `next_k`.
pub struct KindBackend {
    pub max_k: usize,
    warm: bool,
    stats: Mutex<Option<LaneSolverStats>>,
}

impl KindBackend {
    /// A cold lane sweeping `k = 1..=max_k`.
    pub fn new(max_k: usize) -> KindBackend {
        KindBackend {
            max_k,
            warm: false,
            stats: Mutex::new(None),
        }
    }

    /// Enables cross-call session reuse through [`WarmPool::global`].
    pub fn warm(mut self, warm: bool) -> KindBackend {
        self.warm = warm;
        self
    }
}

impl Backend for KindBackend {
    fn name(&self) -> &'static str {
        "k-induction"
    }

    fn lane(&self) -> Lane {
        Lane::KInduction
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome {
        let pool = WarmPool::global();
        let (mut session, hits, misses) = warm_or_build(
            self.warm,
            || pool.checkout_kind(ts.fingerprint(), false),
            || KindSession::new(ts, false),
        );
        let snapshot = session.solver_stats();
        let result = session.run_to(self.max_k, budget, ctx);
        let mut stats = LaneSolverStats::delta(Lane::KInduction, snapshot, session.solver_stats());
        stats.warm_hits = hits;
        stats.warm_misses = misses;
        *self.stats.lock().unwrap() = Some(stats);
        // A certificate is only self-contained when neither this run nor
        // a warm predecessor baked foreign bus facts into the solvers.
        let imported = session.imported_facts();
        // Parking discipline (see crate::warm): only an Unknown session
        // may be resumed later — a Timeout base half could still hide an
        // undiscovered counterexample at an already-swept depth.
        if self.warm && matches!(result, KindResult::Unknown { .. }) {
            pool.park_kind(session);
        }
        match result {
            KindResult::Proof { k } => {
                let cert = (imported == 0).then(|| {
                    Box::new(Certificate {
                        restored: Vec::new(),
                        survivors: Vec::new(),
                        kind: CertKind::KInduction { k },
                    })
                });
                EngineOutcome::Proof(ProofEngine::KInduction { k }, cert)
            }
            KindResult::Cex(trace) => validated_attack(ts, trace, "k-induction"),
            KindResult::Unknown { max_k_tried } => {
                EngineOutcome::Inconclusive(InconclusiveReason::InductionGap { max_k: max_k_tried })
            }
            KindResult::Timeout => EngineOutcome::Timeout,
        }
    }

    fn solver_stats(&self) -> Option<LaneSolverStats> {
        *self.stats.lock().unwrap()
    }
}

/// IC3/PDR on the plain netlist; a cex depth hint is reconstructed into a
/// concrete trace with a deeper BMC pass, as in the sequential pipeline.
/// With the bus on it imports lemmas between frontier iterations. PDR's
/// frame clauses are level-indexed and rebuilt per call, so this lane
/// has no warm mode — only stats reporting.
pub struct PdrBackend {
    pub max_frames: usize,
    /// Reconstruction floor: the BMC pass hunts at least this deep.
    pub bmc_depth: usize,
    stats: Mutex<Option<LaneSolverStats>>,
}

impl PdrBackend {
    pub fn new(max_frames: usize, bmc_depth: usize) -> PdrBackend {
        PdrBackend {
            max_frames,
            bmc_depth,
            stats: Mutex::new(None),
        }
    }
}

impl Backend for PdrBackend {
    fn name(&self) -> &'static str {
        "pdr"
    }

    fn lane(&self) -> Lane {
        Lane::Pdr
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome {
        let (result, raw) = pdr_with_stats(
            ts,
            PdrOptions {
                max_frames: self.max_frames,
                budget: budget.clone(),
            },
            ctx,
        );
        *self.stats.lock().unwrap() = Some(LaneSolverStats::cold(Lane::Pdr, raw));
        match result {
            PdrResult::Proof {
                frames,
                invariant_clauses,
                fixpoint_level,
                invariant,
            } => {
                // The invariant is inductive relative to whatever the
                // lane imported; only an import-free run is
                // self-contained certificate material.
                let cert = (ctx.imports() == 0).then(|| {
                    Box::new(Certificate {
                        restored: Vec::new(),
                        survivors: Vec::new(),
                        kind: CertKind::Inductive { blocked: invariant },
                    })
                });
                EngineOutcome::Proof(
                    ProofEngine::Pdr {
                        frames,
                        clauses: invariant_clauses,
                        fixpoint_level,
                    },
                    cert,
                )
            }
            PdrResult::Cex { depth_hint } => {
                let deep = depth_hint.max(self.bmc_depth + 1) + 8;
                match bmc(ts, deep, budget) {
                    BmcResult::Cex(trace) => validated_attack(ts, trace, "pdr"),
                    // Sequential maps an unreconstructed PDR cex to Timeout;
                    // keep the portfolio lane on the same mapping.
                    _ => EngineOutcome::Timeout,
                }
            }
            PdrResult::Timeout => EngineOutcome::Timeout,
            PdrResult::FrameLimit { frames } => {
                EngineOutcome::Inconclusive(InconclusiveReason::FrameCap { frames })
            }
        }
    }

    fn solver_stats(&self) -> Option<LaneSolverStats> {
        *self.stats.lock().unwrap()
    }
}

/// The Houdini lane: filter candidate relational invariants to an
/// inductive subset. Survivors stream onto the exchange bus the moment
/// the consecution fixpoint lands. If they imply safety outright that is
/// a proof (LEAVE's success mode); otherwise they are conjoined onto the
/// netlist as assumptions and both proof engines re-run on the
/// strengthened instance — insurance for racing proof lanes that ended
/// before the lemmas reached the bus.
pub struct HoudiniBackend {
    pub candidates: Vec<Candidate>,
    /// The lemma-free netlist the strengthened instance is rebuilt from.
    pub base_aig: Aig,
    pub keep_probes: bool,
    /// `max_k` for the strengthened k-induction pass (0 = skip).
    pub kind_max_k: usize,
    /// Frame cap for the strengthened PDR pass (0 = skip).
    pub pdr_max_frames: usize,
    /// Reconstruction floor for strengthened-PDR counterexamples.
    pub bmc_depth: usize,
    warm: bool,
    stats: Mutex<Option<LaneSolverStats>>,
}

impl HoudiniBackend {
    pub fn new(
        candidates: Vec<Candidate>,
        base_aig: Aig,
        keep_probes: bool,
        kind_max_k: usize,
        pdr_max_frames: usize,
        bmc_depth: usize,
    ) -> HoudiniBackend {
        HoudiniBackend {
            candidates,
            base_aig,
            keep_probes,
            kind_max_k,
            pdr_max_frames,
            bmc_depth,
            warm: false,
            stats: Mutex::new(None),
        }
    }

    /// Enables warm sessions for the strengthened re-run passes. The
    /// strengthened netlist carries extra assumes and therefore its own
    /// fingerprint, so those sessions never contaminate (or hit) the
    /// plain-netlist lanes' pool entries.
    pub fn warm(mut self, warm: bool) -> HoudiniBackend {
        self.warm = warm;
        self
    }

    fn run_inner(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
        agg: &mut LaneSolverStats,
    ) -> EngineOutcome {
        let mut stream = |_: usize, c: &Candidate| {
            ctx.publish_lemma(c.name.clone(), c.bit);
        };
        let out = match houdini_with(ts, &self.candidates, budget.clone(), Some(&mut stream)) {
            HoudiniResult::Done(out) => out,
            HoudiniResult::Timeout => return EngineOutcome::Timeout,
        };
        if out.proves_safety {
            let cert = Box::new(Certificate {
                restored: Vec::new(),
                survivors: out.survivors.clone(),
                kind: CertKind::Inductive {
                    blocked: Vec::new(),
                },
            });
            return EngineOutcome::Proof(
                ProofEngine::Houdini {
                    invariants: out.survivors.len(),
                },
                Some(cert),
            );
        }
        if out.survivors.is_empty() {
            return EngineOutcome::Inconclusive(InconclusiveReason::NoInvariants);
        }
        // Strengthen: surviving invariants are inductive, so conjoining
        // them as assumptions is sound.
        let mut strengthened = self.base_aig.clone();
        for &i in &out.survivors {
            strengthened.add_assume(self.candidates[i].bit);
        }
        let sts = TransitionSystem::shared(strengthened, self.keep_probes);
        let mut notes = vec![format!(
            "houdini: {}/{} candidates survive after {} rounds",
            out.survivors.len(),
            self.candidates.len(),
            out.rounds
        )];
        // The re-runs work a private instance already carrying the
        // lemmas; they neither import nor re-export them.
        let mut quiet = SharedContext::disabled(Lane::Houdini);
        if self.kind_max_k > 0 {
            let kind = KindBackend::new(self.kind_max_k).warm(self.warm);
            let r = kind.run(&sts, budget.clone(), &mut quiet);
            if let Some(s) = kind.solver_stats() {
                agg.absorb(&s);
            }
            match r {
                // A cex from the strengthened instance was already replayed
                // on the *strengthened* netlist; re-validate on the original
                // before trusting it (the lemmas could mask init states). A
                // replay failure is not a verdict — fall through to the
                // strengthened PDR pass, like the sequential pipeline does.
                EngineOutcome::Attack(trace) => {
                    match validated_attack(ts, trace, "houdini+k-induction") {
                        EngineOutcome::Inconclusive(n) => notes.push(n.to_string()),
                        decisive => return decisive,
                    }
                }
                EngineOutcome::Proof(p, cert) => {
                    // The sub-proof holds on the strengthened instance;
                    // fold the survivors in so the certificate stands on
                    // the plain netlist too.
                    return EngineOutcome::Proof(
                        p,
                        cert.map(|mut c| {
                            c.survivors = out.survivors.clone();
                            c
                        }),
                    );
                }
                EngineOutcome::Inconclusive(n) => notes.push(n.to_string()),
                EngineOutcome::Timeout => return EngineOutcome::Timeout,
            }
        }
        if self.pdr_max_frames > 0 {
            let pdr = PdrBackend::new(self.pdr_max_frames, self.bmc_depth);
            let r = pdr.run(&sts, budget, &mut quiet);
            if let Some(s) = pdr.solver_stats() {
                agg.absorb(&s);
            }
            match r {
                EngineOutcome::Attack(trace) => return validated_attack(ts, trace, "houdini+pdr"),
                EngineOutcome::Proof(p, cert) => {
                    return EngineOutcome::Proof(
                        p,
                        cert.map(|mut c| {
                            c.survivors = out.survivors.clone();
                            c
                        }),
                    );
                }
                EngineOutcome::Inconclusive(n) => notes.push(n.to_string()),
                EngineOutcome::Timeout => return EngineOutcome::Timeout,
            }
        }
        EngineOutcome::Inconclusive(InconclusiveReason::Other(notes.join("; ")))
    }
}

impl Backend for HoudiniBackend {
    fn name(&self) -> &'static str {
        "houdini"
    }

    fn lane(&self) -> Lane {
        Lane::Houdini
    }

    fn run(
        &self,
        ts: &Arc<TransitionSystem>,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> EngineOutcome {
        // The lane's stats aggregate its strengthened sub-runs (the
        // Houdini filtering phase itself keeps its solvers private).
        let mut agg = LaneSolverStats::delta(
            Lane::Houdini,
            csl_sat::SolverStats::default(),
            csl_sat::SolverStats::default(),
        );
        let outcome = self.run_inner(ts, budget, ctx, &mut agg);
        agg.lane = Lane::Houdini;
        *self.stats.lock().unwrap() = Some(agg);
        outcome
    }

    fn solver_stats(&self) -> Option<LaneSolverStats> {
        *self.stats.lock().unwrap()
    }
}

/// One configured lane of a race: the backend, its deadline (per-lane
/// wall caps from a [`crate::LanePlan`] arrive here as earlier
/// deadlines), and its exchange participation.
pub struct LaneSpec {
    pub backend: Box<dyn Backend>,
    pub deadline: Instant,
    /// Pull foreign items off the bus.
    pub import: bool,
    /// Publish this lane's clauses/lemmas.
    pub export: bool,
}

impl LaneSpec {
    /// A lane participating fully in the exchange (when it is enabled).
    pub fn new(backend: Box<dyn Backend>, deadline: Instant) -> LaneSpec {
        LaneSpec {
            backend,
            deadline,
            import: true,
            export: true,
        }
    }

    /// Sets the exchange participation (builder style).
    pub fn exchange(mut self, import: bool, export: bool) -> LaneSpec {
        self.import = import;
        self.export = export;
        self
    }
}

/// The result of one lane, in arrival order.
#[derive(Debug)]
pub struct LaneResult {
    pub engine: &'static str,
    pub lane: Lane,
    pub outcome: EngineOutcome,
    pub elapsed: Duration,
    /// The deadline this lane ran under — earlier than the race's shared
    /// deadline exactly when a per-lane wall cap shortened it, which is
    /// how the merge tells a lane-local timeout from a global one.
    pub deadline: Instant,
    /// Exchange-bus items this lane applied to its solvers.
    pub imports: usize,
    /// Exchange-bus items this lane published.
    pub exports: usize,
    /// Fuzz-reached proof obligations among the imports.
    pub obligations: usize,
    /// Clause-export length threshold the lane ran under (0 = no bus).
    pub policy_len: usize,
    /// Clause-export LBD threshold the lane ran under (0 = no bus).
    pub policy_lbd: u32,
    /// Whether the export policy was adapted from bus traffic.
    pub adaptive: bool,
    /// Campaign statistics, when this lane was a fuzzing backend.
    pub fuzz: Option<FuzzStats>,
    /// Coverage accounting, when this lane was a coverage-guided fuzzing
    /// backend.
    pub coverage: Option<CoverageStats>,
    /// Solver activity (and warm-start accounting), when this lane was
    /// a SAT backend.
    pub solver: Option<LaneSolverStats>,
}

/// Everything the race produced: per-lane results (in completion order)
/// plus whether the stop flag was raised to cancel the stragglers.
#[derive(Debug)]
pub struct RaceReport {
    pub lanes: Vec<LaneResult>,
    pub canceled_stragglers: bool,
}

impl RaceReport {
    /// Per-lane exchange traffic, in completion order.
    pub fn exchange_stats(&self) -> Vec<ExchangeStats> {
        self.lanes
            .iter()
            .map(|l| ExchangeStats {
                lane: l.lane,
                imports: l.imports,
                exports: l.exports,
                obligations: l.obligations,
                policy_len: l.policy_len,
                policy_lbd: l.policy_lbd,
                adaptive: l.adaptive,
            })
            .collect()
    }
}

/// Races `lanes` against each other, one thread per backend, until the
/// first decisive outcome or each lane's deadline. Each lane builds its
/// own [`TransitionSystem`] from a clone of `aig` (the build is cheap
/// relative to any SAT query) and gets a budget carrying the shared stop
/// flag; when a lane reports a decisive outcome the flag is raised and
/// every other lane aborts at its next conflict/cycle boundary.
///
/// When `exchange.enabled`, one [`Exchange`] bus is shared by every lane
/// whose [`LaneSpec`] participates; otherwise every lane gets an inert
/// context.
pub fn race(
    lanes: Vec<LaneSpec>,
    aig: &Aig,
    keep_probes: bool,
    exchange: &ExchangeConfig,
) -> RaceReport {
    let stop = Arc::new(AtomicBool::new(false));
    let bus = exchange.enabled.then(|| Exchange::new(exchange.clone()));
    let (tx, rx) = mpsc::channel::<LaneResult>();
    let total = lanes.len();
    let mut handles = Vec::with_capacity(total);
    for spec in lanes {
        let aig = aig.clone();
        let stop = stop.clone();
        let tx = tx.clone();
        let lane = spec.backend.lane();
        let mut ctx = match &bus {
            Some(bus) => SharedContext::attached(bus.clone(), lane, spec.import, spec.export),
            None => SharedContext::disabled(lane),
        };
        handles.push(std::thread::spawn(move || {
            let start = Instant::now();
            let ts = TransitionSystem::shared(aig, keep_probes);
            let budget = Budget::until(spec.deadline).with_stop(stop);
            let outcome = spec.backend.run(&ts, budget, &mut ctx);
            let xs = ctx.stats();
            // The receiver may be gone if the race was already decided.
            let _ = tx.send(LaneResult {
                engine: spec.backend.name(),
                lane,
                outcome,
                elapsed: start.elapsed(),
                deadline: spec.deadline,
                imports: xs.imports,
                exports: xs.exports,
                obligations: xs.obligations,
                policy_len: xs.policy_len,
                policy_lbd: xs.policy_lbd,
                adaptive: xs.adaptive,
                fuzz: spec.backend.fuzz_stats(),
                coverage: spec.backend.coverage_stats(),
                solver: spec.backend.solver_stats(),
            });
        }));
    }
    drop(tx);

    let mut lanes = Vec::with_capacity(total);
    let mut canceled_stragglers = false;
    while lanes.len() < total {
        match rx.recv() {
            Ok(lane) => {
                let decisive = lane.outcome.is_decisive();
                lanes.push(lane);
                if decisive && !canceled_stragglers {
                    stop.store(true, Ordering::Relaxed);
                    canceled_stragglers = true;
                }
            }
            Err(_) => break, // all senders gone
        }
    }
    // By here every lane has reported (the recv loop only exits at `total`
    // results, or on Err — which requires every sender already dropped with
    // an empty channel), so the joins are immediate.
    for h in handles {
        let _ = h.join();
    }
    RaceReport {
        lanes,
        canceled_stragglers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// A 1-bit design with no bad states (backends under test ignore it).
    fn trivial_aig() -> Aig {
        let mut d = Design::new("trivial");
        let r = d.reg("r", 1, Init::Zero);
        let q = r.q();
        d.set_next(&r, q);
        d.finish()
    }

    /// Returns `outcome()` after `delay`, polling the stop flag every
    /// millisecond; reports how it exited through the shared flags.
    struct FakeBackend<F: Fn() -> EngineOutcome + Send + Sync> {
        name: &'static str,
        delay: Duration,
        outcome: F,
        saw_stop: Arc<AtomicBool>,
        finished_naturally: Arc<AtomicBool>,
    }

    impl<F: Fn() -> EngineOutcome + Send + Sync> Backend for FakeBackend<F> {
        fn name(&self) -> &'static str {
            self.name
        }

        fn lane(&self) -> Lane {
            Lane::Bmc
        }

        fn run(
            &self,
            _ts: &Arc<TransitionSystem>,
            budget: Budget,
            _ctx: &mut SharedContext,
        ) -> EngineOutcome {
            let end = Instant::now() + self.delay;
            while Instant::now() < end {
                if budget.stop_requested() {
                    self.saw_stop.store(true, Ordering::Relaxed);
                    return EngineOutcome::Timeout;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            self.finished_naturally.store(true, Ordering::Relaxed);
            (self.outcome)()
        }
    }

    fn fake(
        name: &'static str,
        delay: Duration,
        outcome: impl Fn() -> EngineOutcome + Send + Sync + 'static,
    ) -> (Box<dyn Backend>, Arc<AtomicBool>, Arc<AtomicBool>) {
        let saw_stop = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));
        let backend = Box::new(FakeBackend {
            name,
            delay,
            outcome,
            saw_stop: saw_stop.clone(),
            finished_naturally: finished.clone(),
        });
        (backend, saw_stop, finished)
    }

    #[test]
    fn fast_engine_wins_and_slow_loser_is_canceled_promptly() {
        let slow_natural_delay = Duration::from_secs(30);
        let (fast, _, _) = fake("fast", Duration::from_millis(10), || {
            EngineOutcome::Proof(ProofEngine::KInduction { k: 1 }, None)
        });
        let (slow, slow_saw_stop, slow_finished) = fake("slow", slow_natural_delay, || {
            EngineOutcome::Proof(
                ProofEngine::Pdr {
                    frames: 1,
                    clauses: 0,
                    fixpoint_level: 0,
                },
                None,
            )
        });
        let start = Instant::now();
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(
            vec![LaneSpec::new(fast, deadline), LaneSpec::new(slow, deadline)],
            &trivial_aig(),
            false,
            &ExchangeConfig::off(),
        );
        let wall = start.elapsed();
        // The fast proof decided the race and the slow lane was stopped
        // cooperatively, well before its natural completion time.
        assert!(report.canceled_stragglers);
        assert!(
            wall < slow_natural_delay / 4,
            "race took {wall:?}, cancellation was not prompt"
        );
        assert!(
            slow_saw_stop.load(Ordering::Relaxed),
            "loser never saw the stop flag"
        );
        assert!(!slow_finished.load(Ordering::Relaxed));
        let winner = report
            .lanes
            .iter()
            .find(|l| l.outcome.is_decisive())
            .expect("decisive lane");
        assert_eq!(winner.engine, "fast");
    }

    #[test]
    fn inconclusive_lanes_do_not_cancel_each_other() {
        let (a, _, a_fin) = fake("a", Duration::from_millis(5), || {
            EngineOutcome::Inconclusive(InconclusiveReason::Other("nothing".into()))
        });
        let (b, b_saw_stop, b_fin) = fake("b", Duration::from_millis(40), || {
            EngineOutcome::Inconclusive(InconclusiveReason::Other("nothing".into()))
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(
            vec![LaneSpec::new(a, deadline), LaneSpec::new(b, deadline)],
            &trivial_aig(),
            false,
            &ExchangeConfig::off(),
        );
        assert!(!report.canceled_stragglers);
        assert!(a_fin.load(Ordering::Relaxed));
        assert!(b_fin.load(Ordering::Relaxed));
        assert!(!b_saw_stop.load(Ordering::Relaxed));
        assert_eq!(report.lanes.len(), 2);
    }

    #[test]
    fn all_lanes_report_even_when_race_is_decided() {
        // Three lanes: the winner plus two with staggered delays; every
        // lane's result must be collected (for the notes) despite the stop.
        let (w, _, _) = fake("winner", Duration::from_millis(1), || {
            EngineOutcome::Proof(ProofEngine::KInduction { k: 2 }, None)
        });
        let (l1, _, _) = fake("l1", Duration::from_secs(20), || EngineOutcome::Timeout);
        let (l2, _, _) = fake("l2", Duration::from_secs(20), || EngineOutcome::Timeout);
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(
            vec![
                LaneSpec::new(w, deadline),
                LaneSpec::new(l1, deadline),
                LaneSpec::new(l2, deadline),
            ],
            &trivial_aig(),
            false,
            &ExchangeConfig::off(),
        );
        assert_eq!(report.lanes.len(), 3);
    }

    /// A lane that publishes over a live bus and one that imports: the
    /// race must surface both sides' counters in its lane results.
    #[test]
    fn exchange_counters_reach_lane_results() {
        struct Publisher;
        impl Backend for Publisher {
            fn name(&self) -> &'static str {
                "pub"
            }
            fn lane(&self) -> Lane {
                Lane::Houdini
            }
            fn run(
                &self,
                _ts: &Arc<TransitionSystem>,
                _budget: Budget,
                ctx: &mut SharedContext,
            ) -> EngineOutcome {
                ctx.publish_lemma("lemma", csl_hdl::Bit::from_packed(2));
                EngineOutcome::Inconclusive(InconclusiveReason::Other("done".into()))
            }
        }
        struct Consumer;
        impl Backend for Consumer {
            fn name(&self) -> &'static str {
                "con"
            }
            fn lane(&self) -> Lane {
                Lane::KInduction
            }
            fn run(
                &self,
                _ts: &Arc<TransitionSystem>,
                budget: Budget,
                ctx: &mut SharedContext,
            ) -> EngineOutcome {
                // Poll until the publisher's lemma arrives or time is up.
                let end = Instant::now() + Duration::from_secs(5);
                while Instant::now() < end && !budget.stop_requested() {
                    let n = ctx.poll().len();
                    if n > 0 {
                        ctx.note_imported(n);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                EngineOutcome::Inconclusive(InconclusiveReason::Other("done".into()))
            }
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let report = race(
            vec![
                LaneSpec::new(Box::new(Publisher), deadline),
                LaneSpec::new(Box::new(Consumer), deadline),
            ],
            &trivial_aig(),
            false,
            &ExchangeConfig::on(),
        );
        let stats = report.exchange_stats();
        let publisher = stats.iter().find(|s| s.lane == Lane::Houdini).unwrap();
        let consumer = stats.iter().find(|s| s.lane == Lane::KInduction).unwrap();
        assert_eq!(publisher.exports, 1);
        assert_eq!(consumer.imports, 1);
    }
}

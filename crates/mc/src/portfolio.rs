//! Portfolio execution: verification engines racing on threads.
//!
//! The paper's JasperGold workflow (§6) runs an attack-finding engine and
//! several proof engines against the same instrumented design under one
//! wall-clock budget. The sequential pipeline in [`crate::engine`] burns
//! that budget one engine at a time; this module instead races every
//! engine on its own `std::thread` worker — first decisive verdict wins —
//! with cooperative cancellation: the shared [`AtomicBool`] stop flag is
//! threaded through [`csl_sat::Budget`], so the losers' in-flight SAT
//! queries abort at their next conflict boundary instead of running to
//! their own timeouts.
//!
//! Verdict semantics match the sequential pipeline: an attack
//! counterexample beats a proof, a proof beats a timeout, and Houdini
//! survivors still strengthen k-induction/PDR — the Houdini lane re-runs
//! both proof engines on the lemma-strengthened netlist when the filter
//! completes without proving safety outright.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use csl_hdl::Aig;
use csl_sat::Budget;

use crate::bmc::{bmc, BmcResult};
use crate::engine::ProofEngine;
use crate::houdini::{houdini, Candidate, HoudiniResult};
use crate::kind::{k_induction, KindOptions, KindResult};
use crate::pdr::{pdr, PdrOptions, PdrResult};
use crate::sim::Sim;
use crate::trace::Trace;
use crate::ts::TransitionSystem;

/// What a single engine produced. [`EngineOutcome::Attack`] and
/// [`EngineOutcome::Proof`] are decisive: the first of either ends the
/// race and cancels the other lanes.
#[derive(Debug)]
pub enum EngineOutcome {
    /// A replay-validated counterexample.
    Attack(Box<Trace>),
    /// An unbounded proof.
    Proof(ProofEngine),
    /// Finished inside the budget without a verdict (bounded-clean BMC,
    /// induction that never closed, PDR frame cap, …).
    Inconclusive(String),
    /// Budget exhausted or canceled by a winning sibling.
    Timeout,
}

impl EngineOutcome {
    pub fn is_decisive(&self) -> bool {
        matches!(self, EngineOutcome::Attack(_) | EngineOutcome::Proof(_))
    }
}

/// One lane of the portfolio: a named engine that checks a transition
/// system under a (cancellable) budget. Implementations must validate
/// their own counterexamples (replay on the concrete simulator) before
/// reporting [`EngineOutcome::Attack`].
pub trait Engine: Send {
    fn name(&self) -> &'static str;
    fn run(&self, ts: &TransitionSystem, budget: Budget) -> EngineOutcome;
}

/// Validates a trace by concrete replay; decisive only if the replay
/// satisfies the assumptions and fires a bad bit.
fn validated_attack(ts: &TransitionSystem, trace: Box<Trace>, engine: &str) -> EngineOutcome {
    let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&trace);
    if assumes_ok && bad {
        EngineOutcome::Attack(trace)
    } else {
        EngineOutcome::Inconclusive(format!("{engine}: counterexample failed simulation replay"))
    }
}

/// Bounded model checking — the attack-finding lane (the paper's `Ht`).
pub struct BmcEngine {
    pub depth: usize,
    /// Progressive depth schedule from the lane plan: each step gets an
    /// even share of the lane's remaining clock, deeper steps inherit
    /// whatever earlier steps left over, and the first counterexample
    /// ends the walk. Empty = one pass at `depth`.
    pub schedule: Vec<usize>,
}

impl Engine for BmcEngine {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn run(&self, ts: &TransitionSystem, budget: Budget) -> EngineOutcome {
        if self.schedule.is_empty() {
            return match bmc(ts, self.depth, budget) {
                // The sequential pipeline reports a BMC cex as an attack even
                // if the replay check fails (with a warning note); mirror that
                // here so the two modes cannot diverge on verdict kind.
                BmcResult::Cex(trace) => EngineOutcome::Attack(trace),
                BmcResult::Clean { depth_checked } => {
                    EngineOutcome::Inconclusive(format!("bmc clean to depth {depth_checked}"))
                }
                BmcResult::Timeout { .. } => EngineOutcome::Timeout,
            };
        }
        let lane_deadline = budget.deadline;
        let mut clean_to: Option<usize> = None;
        for (i, &depth) in self.schedule.iter().enumerate() {
            // Split the remaining lane clock evenly over the remaining
            // steps; the final step always gets everything that is left.
            let step_budget = match lane_deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return EngineOutcome::Timeout;
                    }
                    let steps_left = (self.schedule.len() - i) as u32;
                    let step_deadline = now + (dl - now) / steps_left;
                    Budget {
                        deadline: Some(step_deadline),
                        ..budget.clone()
                    }
                }
                None => budget.clone(),
            };
            match bmc(ts, depth, step_budget) {
                BmcResult::Cex(trace) => return EngineOutcome::Attack(trace),
                BmcResult::Clean { depth_checked } => clean_to = Some(depth_checked),
                BmcResult::Timeout { depth_checked } => {
                    clean_to = depth_checked.or(clean_to);
                    // A step timeout only ends the lane when its *lane*
                    // clock (not just the step slice) is gone.
                    if budget.out_of_time() || budget.stop_requested() {
                        return EngineOutcome::Timeout;
                    }
                }
            }
        }
        match clean_to {
            Some(d) => EngineOutcome::Inconclusive(format!(
                "bmc schedule {:?} clean to depth {d}",
                self.schedule
            )),
            None => EngineOutcome::Timeout,
        }
    }
}

/// k-induction on the plain (lemma-free) netlist.
pub struct KindEngine {
    pub max_k: usize,
}

impl Engine for KindEngine {
    fn name(&self) -> &'static str {
        "k-induction"
    }

    fn run(&self, ts: &TransitionSystem, budget: Budget) -> EngineOutcome {
        match k_induction(
            ts,
            KindOptions {
                max_k: self.max_k,
                unique_states: false,
                budget,
            },
        ) {
            KindResult::Proof { k } => EngineOutcome::Proof(ProofEngine::KInduction { k }),
            KindResult::Cex(trace) => validated_attack(ts, trace, "k-induction"),
            KindResult::Unknown { max_k_tried } => {
                EngineOutcome::Inconclusive(format!("k-induction inconclusive to k={max_k_tried}"))
            }
            KindResult::Timeout => EngineOutcome::Timeout,
        }
    }
}

/// IC3/PDR on the plain netlist; a cex depth hint is reconstructed into a
/// concrete trace with a deeper BMC pass, as in the sequential pipeline.
pub struct PdrEngine {
    pub max_frames: usize,
    /// Reconstruction floor: the BMC pass hunts at least this deep.
    pub bmc_depth: usize,
}

impl Engine for PdrEngine {
    fn name(&self) -> &'static str {
        "pdr"
    }

    fn run(&self, ts: &TransitionSystem, budget: Budget) -> EngineOutcome {
        match pdr(
            ts,
            PdrOptions {
                max_frames: self.max_frames,
                budget: budget.clone(),
            },
        ) {
            PdrResult::Proof {
                frames,
                invariant_clauses,
            } => EngineOutcome::Proof(ProofEngine::Pdr {
                frames,
                clauses: invariant_clauses,
            }),
            PdrResult::Cex { depth_hint } => {
                let deep = depth_hint.max(self.bmc_depth + 1) + 8;
                match bmc(ts, deep, budget) {
                    BmcResult::Cex(trace) => validated_attack(ts, trace, "pdr"),
                    // Sequential maps an unreconstructed PDR cex to Timeout;
                    // keep the portfolio lane on the same mapping.
                    _ => EngineOutcome::Timeout,
                }
            }
            PdrResult::Timeout => EngineOutcome::Timeout,
            PdrResult::FrameLimit { frames } => {
                EngineOutcome::Inconclusive(format!("pdr frame limit at {frames}"))
            }
        }
    }
}

/// The Houdini lane: filter candidate relational invariants to an
/// inductive subset. If the survivors imply safety outright that is a
/// proof (LEAVE's success mode); otherwise they are conjoined onto the
/// netlist as assumptions and both proof engines re-run on the
/// strengthened instance — the portfolio's version of "Houdini survivors
/// strengthen k-induction/PDR".
pub struct HoudiniEngine {
    pub candidates: Vec<Candidate>,
    /// The lemma-free netlist the strengthened instance is rebuilt from.
    pub base_aig: Aig,
    pub keep_probes: bool,
    /// `max_k` for the strengthened k-induction pass (0 = skip).
    pub kind_max_k: usize,
    /// Frame cap for the strengthened PDR pass (0 = skip).
    pub pdr_max_frames: usize,
    /// Reconstruction floor for strengthened-PDR counterexamples.
    pub bmc_depth: usize,
}

impl Engine for HoudiniEngine {
    fn name(&self) -> &'static str {
        "houdini"
    }

    fn run(&self, ts: &TransitionSystem, budget: Budget) -> EngineOutcome {
        let out = match houdini(ts, &self.candidates, budget.clone()) {
            HoudiniResult::Done(out) => out,
            HoudiniResult::Timeout => return EngineOutcome::Timeout,
        };
        if out.proves_safety {
            return EngineOutcome::Proof(ProofEngine::Houdini {
                invariants: out.survivors.len(),
            });
        }
        if out.survivors.is_empty() {
            return EngineOutcome::Inconclusive(
                "houdini: no surviving invariants to strengthen with".into(),
            );
        }
        // Strengthen: surviving invariants are inductive, so conjoining
        // them as assumptions is sound.
        let mut strengthened = self.base_aig.clone();
        for &i in &out.survivors {
            strengthened.add_assume(self.candidates[i].bit);
        }
        let sts = TransitionSystem::new(strengthened, self.keep_probes);
        let mut notes = vec![format!(
            "houdini: {}/{} candidates survive after {} rounds",
            out.survivors.len(),
            self.candidates.len(),
            out.rounds
        )];
        if self.kind_max_k > 0 {
            let kind = KindEngine {
                max_k: self.kind_max_k,
            };
            match kind.run(&sts, budget.clone()) {
                // A cex from the strengthened instance was already replayed
                // on the *strengthened* netlist; re-validate on the original
                // before trusting it (the lemmas could mask init states). A
                // replay failure is not a verdict — fall through to the
                // strengthened PDR pass, like the sequential pipeline does.
                EngineOutcome::Attack(trace) => {
                    match validated_attack(ts, trace, "houdini+k-induction") {
                        EngineOutcome::Inconclusive(n) => notes.push(n),
                        decisive => return decisive,
                    }
                }
                EngineOutcome::Proof(p) => return EngineOutcome::Proof(p),
                EngineOutcome::Inconclusive(n) => notes.push(n),
                EngineOutcome::Timeout => return EngineOutcome::Timeout,
            }
        }
        if self.pdr_max_frames > 0 {
            let pdr = PdrEngine {
                max_frames: self.pdr_max_frames,
                bmc_depth: self.bmc_depth,
            };
            match pdr.run(&sts, budget) {
                EngineOutcome::Attack(trace) => return validated_attack(ts, trace, "houdini+pdr"),
                EngineOutcome::Proof(p) => return EngineOutcome::Proof(p),
                EngineOutcome::Inconclusive(n) => notes.push(n),
                EngineOutcome::Timeout => return EngineOutcome::Timeout,
            }
        }
        EngineOutcome::Inconclusive(notes.join("; "))
    }
}

/// The result of one lane, in arrival order.
#[derive(Debug)]
pub struct LaneResult {
    pub engine: &'static str,
    pub outcome: EngineOutcome,
    pub elapsed: Duration,
    /// The deadline this lane ran under — earlier than the race's shared
    /// deadline exactly when a per-lane wall cap shortened it, which is
    /// how the merge tells a lane-local timeout from a global one.
    pub deadline: Instant,
}

/// Everything the race produced: per-lane results (in completion order)
/// plus whether the stop flag was raised to cancel the stragglers.
#[derive(Debug)]
pub struct RaceReport {
    pub lanes: Vec<LaneResult>,
    pub canceled_stragglers: bool,
}

/// Races `engines` against each other, one thread per engine, until the
/// first decisive outcome or each lane's deadline (per-lane wall caps
/// from a [`crate::LanePlan`] arrive here as distinct deadlines). Each
/// lane builds its own [`TransitionSystem`] from a clone of `aig` (the
/// build is cheap relative to any SAT query) and gets a budget carrying
/// the shared stop flag; when a lane reports a decisive outcome the flag
/// is raised and every other lane aborts at its next conflict/cycle
/// boundary.
pub fn race(engines: Vec<(Box<dyn Engine>, Instant)>, aig: &Aig, keep_probes: bool) -> RaceReport {
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<LaneResult>();
    let total = engines.len();
    let mut handles = Vec::with_capacity(total);
    for (engine, deadline) in engines {
        let aig = aig.clone();
        let stop = stop.clone();
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let start = Instant::now();
            let ts = TransitionSystem::new(aig, keep_probes);
            let budget = Budget::until(deadline).with_stop(stop);
            let outcome = engine.run(&ts, budget);
            // The receiver may be gone if the race was already decided.
            let _ = tx.send(LaneResult {
                engine: engine.name(),
                outcome,
                elapsed: start.elapsed(),
                deadline,
            });
        }));
    }
    drop(tx);

    let mut lanes = Vec::with_capacity(total);
    let mut canceled_stragglers = false;
    while lanes.len() < total {
        match rx.recv() {
            Ok(lane) => {
                let decisive = lane.outcome.is_decisive();
                lanes.push(lane);
                if decisive && !canceled_stragglers {
                    stop.store(true, Ordering::Relaxed);
                    canceled_stragglers = true;
                }
            }
            Err(_) => break, // all senders gone
        }
    }
    // By here every lane has reported (the recv loop only exits at `total`
    // results, or on Err — which requires every sender already dropped with
    // an empty channel), so the joins are immediate.
    for h in handles {
        let _ = h.join();
    }
    RaceReport {
        lanes,
        canceled_stragglers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// A 1-bit design with no bad states (engines under test ignore it).
    fn trivial_aig() -> Aig {
        let mut d = Design::new("trivial");
        let r = d.reg("r", 1, Init::Zero);
        let q = r.q();
        d.set_next(&r, q);
        d.finish()
    }

    /// Returns `outcome()` after `delay`, polling the stop flag every
    /// millisecond; reports how it exited through the shared flags.
    struct FakeEngine<F: Fn() -> EngineOutcome + Send + Sync> {
        name: &'static str,
        delay: Duration,
        outcome: F,
        saw_stop: Arc<AtomicBool>,
        finished_naturally: Arc<AtomicBool>,
    }

    impl<F: Fn() -> EngineOutcome + Send + Sync> Engine for FakeEngine<F> {
        fn name(&self) -> &'static str {
            self.name
        }

        fn run(&self, _ts: &TransitionSystem, budget: Budget) -> EngineOutcome {
            let end = Instant::now() + self.delay;
            while Instant::now() < end {
                if budget.stop_requested() {
                    self.saw_stop.store(true, Ordering::Relaxed);
                    return EngineOutcome::Timeout;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            self.finished_naturally.store(true, Ordering::Relaxed);
            (self.outcome)()
        }
    }

    fn fake(
        name: &'static str,
        delay: Duration,
        outcome: impl Fn() -> EngineOutcome + Send + Sync + 'static,
    ) -> (Box<dyn Engine>, Arc<AtomicBool>, Arc<AtomicBool>) {
        let saw_stop = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));
        let engine = Box::new(FakeEngine {
            name,
            delay,
            outcome,
            saw_stop: saw_stop.clone(),
            finished_naturally: finished.clone(),
        });
        (engine, saw_stop, finished)
    }

    #[test]
    fn fast_engine_wins_and_slow_loser_is_canceled_promptly() {
        let slow_natural_delay = Duration::from_secs(30);
        let (fast, _, _) = fake("fast", Duration::from_millis(10), || {
            EngineOutcome::Proof(ProofEngine::KInduction { k: 1 })
        });
        let (slow, slow_saw_stop, slow_finished) = fake("slow", slow_natural_delay, || {
            EngineOutcome::Proof(ProofEngine::Pdr {
                frames: 1,
                clauses: 0,
            })
        });
        let start = Instant::now();
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(
            vec![(fast, deadline), (slow, deadline)],
            &trivial_aig(),
            false,
        );
        let wall = start.elapsed();
        // The fast proof decided the race and the slow lane was stopped
        // cooperatively, well before its natural completion time.
        assert!(report.canceled_stragglers);
        assert!(
            wall < slow_natural_delay / 4,
            "race took {wall:?}, cancellation was not prompt"
        );
        assert!(
            slow_saw_stop.load(Ordering::Relaxed),
            "loser never saw the stop flag"
        );
        assert!(!slow_finished.load(Ordering::Relaxed));
        let winner = report
            .lanes
            .iter()
            .find(|l| l.outcome.is_decisive())
            .expect("decisive lane");
        assert_eq!(winner.engine, "fast");
    }

    #[test]
    fn inconclusive_lanes_do_not_cancel_each_other() {
        let (a, _, a_fin) = fake("a", Duration::from_millis(5), || {
            EngineOutcome::Inconclusive("nothing".into())
        });
        let (b, b_saw_stop, b_fin) = fake("b", Duration::from_millis(40), || {
            EngineOutcome::Inconclusive("nothing".into())
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(vec![(a, deadline), (b, deadline)], &trivial_aig(), false);
        assert!(!report.canceled_stragglers);
        assert!(a_fin.load(Ordering::Relaxed));
        assert!(b_fin.load(Ordering::Relaxed));
        assert!(!b_saw_stop.load(Ordering::Relaxed));
        assert_eq!(report.lanes.len(), 2);
    }

    #[test]
    fn all_lanes_report_even_when_race_is_decided() {
        // Three lanes: the winner plus two with staggered delays; every
        // lane's result must be collected (for the notes) despite the stop.
        let (w, _, _) = fake("winner", Duration::from_millis(1), || {
            EngineOutcome::Proof(ProofEngine::KInduction { k: 2 })
        });
        let (l1, _, _) = fake("l1", Duration::from_secs(20), || EngineOutcome::Timeout);
        let (l2, _, _) = fake("l2", Duration::from_secs(20), || EngineOutcome::Timeout);
        let deadline = Instant::now() + Duration::from_secs(60);
        let report = race(
            vec![(w, deadline), (l1, deadline), (l2, deadline)],
            &trivial_aig(),
            false,
        );
        assert_eq!(report.lanes.len(), 3);
    }
}

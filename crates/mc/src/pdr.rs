//! Property-directed reachability (IC3).
//!
//! The unbounded-proof engine standing in for JasperGold's proof engines
//! (paper §6 uses the `Mp`/`AM` engines to find proofs). This is a
//! conventional IC3 with:
//!
//! * a single incremental SAT instance holding one copy of the transition
//!   relation (frames 0 → 1 of the [`Unroller`] in free-init mode),
//! * per-level activation literals for frame clauses, with the initial
//!   state gated by the level-0 activation literal,
//! * unsat-core predecessor lifting and unsat-core + literal-drop
//!   inductive generalisation,
//! * environment constraints (`assume` bits) asserted in both frames, so
//!   all reasoning is relative to the contract constraint check — the
//!   paper's hypothesis that shadow-logic constraints carry invariant
//!   power (§8) materialises here as smaller, shallower IC3 runs.
//!
//! Initial states may be *partially* symbolic (instruction memory), so
//! init-disjointness of cubes is decided by SAT queries rather than the
//! syntactic check of classic AIGER-based IC3.

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;

use csl_sat::{Budget, Lit, SolveResult, SolverStats};

use crate::exchange::{ExchangeItem, SharedContext};
use crate::lane::Lane;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// A cube: a partial assignment of latches, sorted by latch index.
pub type Cube = Vec<(u32, bool)>;

/// Outcome of a PDR run.
#[derive(Debug)]
pub enum PdrResult {
    /// Safety proved; the invariant lives at frame `fixpoint_level`.
    Proof {
        frames: usize,
        invariant_clauses: usize,
        /// Frame index at which propagation found the fixpoint.
        fixpoint_level: usize,
        /// The inductive invariant as blocked cubes over latch
        /// `(index, value)` pairs: Inv = (no bad reachable from) the
        /// conjunction of ¬cube for each cube here. Certificate
        /// material — init-true, inductive relative to the assumes,
        /// and excluding every bad state.
        invariant: Vec<Cube>,
    },
    /// A counterexample exists; rerun BMC around `depth_hint` to extract a
    /// concrete trace.
    Cex { depth_hint: usize },
    /// Budget exhausted.
    Timeout,
    /// Frame limit reached without convergence.
    FrameLimit { frames: usize },
}

/// Options for [`pdr`].
#[derive(Clone, Debug)]
pub struct PdrOptions {
    pub max_frames: usize,
    pub budget: Budget,
}

impl Default for PdrOptions {
    fn default() -> Self {
        PdrOptions {
            max_frames: 60,
            budget: Budget::unlimited(),
        }
    }
}

struct Obligation {
    level: usize,
    /// Tie-breaker so the heap is a stable FIFO within a level.
    seq: u64,
    cube: Cube,
}

impl PartialEq for Obligation {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level && self.seq == other.seq
    }
}
impl Eq for Obligation {}
impl PartialOrd for Obligation {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Obligation {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the *lowest* level first.
        other.level.cmp(&self.level).then(other.seq.cmp(&self.seq))
    }
}

struct PdrState {
    ts: Arc<TransitionSystem>,
    u: Unroller,
    /// Activation literal per level (index 0 = initial states).
    acts: Vec<Lit>,
    /// frames[i] = cubes blocked at exactly level i (1-based; index 0 unused).
    frames: Vec<Vec<Cube>>,
    /// Latch literal caches at frames 0 and 1.
    lit0: Vec<Lit>,
    lit1: Vec<Lit>,
    /// Map latch index -> position in `active_latches`.
    latch_pos: Vec<usize>,
    bad0: Lit,
    bad1: Lit,
    /// "No bad bit at frame 0" gate, for lifting queries.
    seq: u64,
    budget: Budget,
    queries_since_cleanup: usize,
    /// Fuzz-proven-reachable states from imported
    /// [`crate::exchange::SharedObligation`]s: `(full active-latch cube,
    /// reset-relative depth)`. They act as *generalized initial frames*
    /// (generalisation refuses cubes containing one at an applicable
    /// level) and as directed reachability probes (see
    /// [`PdrState::probe_obligations`]).
    reached: Vec<(Cube, usize)>,
    /// How many of `reached` have had their adjacency probe run.
    probed: usize,
    /// Frontier clauses already published (dedup) and the running count.
    frontier_seen: HashSet<Cube>,
    frontier_exported: usize,
}

impl PdrState {
    fn new(ts: &Arc<TransitionSystem>, opts: &PdrOptions) -> PdrState {
        let mut u = Unroller::new(ts, InitMode::Free);
        u.set_budget(opts.budget.clone());
        u.assert_assumes_through(1);
        let bad0 = u.bad_any_at(0);
        let bad1 = u.bad_any_at(1);
        let mut lit0 = Vec::new();
        let mut lit1 = Vec::new();
        let mut latch_pos = vec![usize::MAX; ts.aig().num_latches()];
        for (pos, &li) in ts.active_latches().iter().enumerate() {
            let out = ts.aig().latches()[li as usize].output;
            lit0.push(u.lit_of(out, 0));
            lit1.push(u.lit_of(out, 1));
            latch_pos[li as usize] = pos;
        }
        // Level-0 activation literal gates the initial values.
        let act0 = u.solver.new_var().positive();
        for (pos, &li) in ts.active_latches().iter().enumerate() {
            if let Some(v) = ts.latch_init(li) {
                let l = if v { lit0[pos] } else { !lit0[pos] };
                u.solver.add_clause(&[!act0, l]);
            }
        }
        PdrState {
            ts: Arc::clone(ts),
            u,
            acts: vec![act0],
            frames: vec![Vec::new()],
            lit0,
            lit1,
            latch_pos,
            bad0,
            bad1,
            seq: 0,
            budget: opts.budget.clone(),
            queries_since_cleanup: 0,
            reached: Vec::new(),
            probed: 0,
            frontier_seen: HashSet::new(),
            frontier_exported: 0,
        }
    }

    fn out_of_time(&self) -> bool {
        self.budget.out_of_time()
    }

    fn top_level(&self) -> usize {
        self.acts.len() - 1
    }

    fn push_level(&mut self) {
        let a = self.u.solver.new_var().positive();
        self.acts.push(a);
        self.frames.push(Vec::new());
    }

    /// Assumption literals activating `F_level` (all levels >= `level`).
    fn frame_assumptions(&self, level: usize) -> Vec<Lit> {
        self.acts[level..].to_vec()
    }

    fn cube_lit0(&self, (latch, val): (u32, bool)) -> Lit {
        let l = self.lit0[self.latch_pos[latch as usize]];
        if val {
            l
        } else {
            !l
        }
    }

    fn cube_lit1(&self, (latch, val): (u32, bool)) -> Lit {
        let l = self.lit1[self.latch_pos[latch as usize]];
        if val {
            l
        } else {
            !l
        }
    }

    /// Temporary activation literal; retire with a `!tmp` unit afterwards.
    fn temp_clause(&mut self, mut clause: Vec<Lit>) -> Lit {
        let tmp = self.u.solver.new_var().positive();
        clause.insert(0, !tmp);
        self.u.solver.add_clause(&clause);
        tmp
    }

    fn retire(&mut self, tmp: Lit) {
        self.u.solver.add_clause(&[!tmp]);
        self.queries_since_cleanup += 1;
        if self.queries_since_cleanup >= 512 {
            self.queries_since_cleanup = 0;
            self.u.solver.simplify();
        }
    }

    /// Does `cube` intersect the constrained initial states?
    fn intersects_init(&mut self, cube: &Cube) -> Result<bool, ()> {
        let mut assumptions = vec![self.acts[0]];
        assumptions.extend(cube.iter().map(|&l| self.cube_lit0(l)));
        match self.u.solve_with(&assumptions) {
            SolveResult::Sat => Ok(true),
            SolveResult::Unsat => Ok(false),
            SolveResult::Canceled => Err(()),
        }
    }

    /// Blocks `cube` at `level` by adding its negation as a frame clause.
    fn add_blocked_cube(&mut self, cube: &Cube, level: usize) {
        let mut clause = vec![!self.acts[level]];
        clause.extend(cube.iter().map(|&l| !self.cube_lit0(l)));
        self.u.solver.add_clause(&clause);
        self.frames[level].push(cube.clone());
    }

    /// SAT?(F_{level} ∧ bad): returns a lifted bad-state cube if reachable
    /// at the frontier.
    fn bad_cube_at(&mut self, level: usize) -> Result<Option<Cube>, ()> {
        let mut assumptions = self.frame_assumptions(level);
        assumptions.push(self.bad0);
        match self.u.solve_with(&assumptions) {
            SolveResult::Unsat => Ok(None),
            SolveResult::Canceled => Err(()),
            SolveResult::Sat => {
                let (cube, inputs) = self.model_state_and_inputs();
                let lifted = self.lift(&cube, &inputs, LiftTarget::Bad)?;
                Ok(Some(lifted))
            }
        }
    }

    /// Reads the frame-0 latch cube and input assignment from the model.
    fn model_state_and_inputs(&mut self) -> (Cube, Vec<Lit>) {
        let mut cube: Cube = Vec::with_capacity(self.ts.active_latches().len());
        for (pos, &li) in self.ts.active_latches().iter().enumerate() {
            if let Some(v) = self.u.solver.value(self.lit0[pos]) {
                cube.push((li, v));
            }
        }
        let inputs: Vec<Lit> = {
            let mut lits = Vec::new();
            let aig = self.ts.aig();
            let active: Vec<u32> = self.ts.active_inputs().to_vec();
            for ii in active {
                let out = aig.inputs()[ii as usize].output;
                let l = self.u.lit_of(out, 0);
                if let Some(v) = self.u.solver.value(l) {
                    lits.push(if v { l } else { !l });
                }
            }
            lits
        };
        (cube, inputs)
    }

    /// Shrinks a concrete predecessor using the unsat core of
    /// `state ∧ inputs ∧ ¬target` (which must be unsatisfiable).
    fn lift(&mut self, cube: &Cube, inputs: &[Lit], target: LiftTarget) -> Result<Cube, ()> {
        let tmp = match &target {
            LiftTarget::Bad => self.temp_clause(vec![!self.bad0]),
            LiftTarget::SuccessorCube(c) => {
                let clause: Vec<Lit> = c.iter().map(|&l| !self.cube_lit1(l)).collect();
                self.temp_clause(clause)
            }
        };
        let mut assumptions: Vec<Lit> = vec![tmp];
        assumptions.extend(inputs.iter().copied());
        assumptions.extend(cube.iter().map(|&l| self.cube_lit0(l)));
        let r = self.u.solve_with(&assumptions);
        let out = match r {
            SolveResult::Unsat => {
                let core: Vec<Lit> = self.u.solver.unsat_core().to_vec();
                let lifted: Cube = cube
                    .iter()
                    .copied()
                    .filter(|&l| core.contains(&self.cube_lit0(l)))
                    .collect();
                Ok(if lifted.is_empty() {
                    cube.clone()
                } else {
                    lifted
                })
            }
            SolveResult::Sat => {
                // Should be unreachable; fall back to the unlifted cube.
                Ok(cube.clone())
            }
            SolveResult::Canceled => Err(()),
        };
        self.retire(tmp);
        out
    }

    /// Relative-induction query: SAT?(F_{level-1} ∧ ¬cube ∧ T ∧ cube′).
    /// `Ok(None)` = UNSAT (cube blocked, core-shrunk cube returned via
    /// `Ok(None)` path's companion `last_core`), `Ok(Some(pred))` = SAT with
    /// a lifted predecessor.
    fn try_block(&mut self, cube: &Cube, level: usize) -> Result<BlockOutcome, ()> {
        let not_cube: Vec<Lit> = cube.iter().map(|&l| !self.cube_lit0(l)).collect();
        let tmp = self.temp_clause(not_cube);
        let mut assumptions = self.frame_assumptions(level - 1);
        assumptions.push(tmp);
        let cube_primed: Vec<Lit> = cube.iter().map(|&l| self.cube_lit1(l)).collect();
        assumptions.extend(cube_primed.iter().copied());
        let r = self.u.solve_with(&assumptions);
        let out = match r {
            SolveResult::Unsat => {
                // Keep only cube literals whose primed assumption is in the core.
                let core: Vec<Lit> = self.u.solver.unsat_core().to_vec();
                let reduced: Cube = cube
                    .iter()
                    .copied()
                    .filter(|&l| core.contains(&self.cube_lit1(l)))
                    .collect();
                Ok(BlockOutcome::Blocked {
                    reduced: if reduced.is_empty() {
                        cube.clone()
                    } else {
                        reduced
                    },
                })
            }
            SolveResult::Sat => {
                let (pred, inputs) = self.model_state_and_inputs();
                // Drop successor-frame info: pred is over frame-0 latches.
                let lifted = self.lift(&pred, &inputs, LiftTarget::SuccessorCube(cube.clone()))?;
                Ok(BlockOutcome::Predecessor(lifted))
            }
            SolveResult::Canceled => Err(()),
        };
        self.retire(tmp);
        out
    }

    /// Ensures `cube` stays init-disjoint, restoring literals from
    /// `fallback` if needed.
    fn restore_init_disjoint(&mut self, mut cube: Cube, fallback: &Cube) -> Result<Cube, ()> {
        if !self.intersects_init(&cube)? {
            return Ok(cube);
        }
        for &l in fallback {
            if !cube.contains(&l) {
                cube.push(l);
                cube.sort_unstable();
                if !self.intersects_init(&cube)? {
                    return Ok(cube);
                }
            }
        }
        Ok(fallback.clone())
    }

    /// Inductive generalisation: unsat-core shrink already applied; now try
    /// dropping each literal while keeping (a) init-disjointness and
    /// (b) relative induction at `level`.
    fn generalize(&mut self, mut cube: Cube, level: usize) -> Result<Cube, ()> {
        let mut i = 0;
        while i < cube.len() {
            if cube.len() == 1 {
                break;
            }
            let mut candidate = cube.clone();
            candidate.remove(i);
            if self.intersects_init(&candidate)? || self.hits_reached(&candidate, level) {
                i += 1;
                continue;
            }
            match self.try_block(&candidate, level)? {
                BlockOutcome::Blocked { reduced } => {
                    let restored = self.restore_init_disjoint(reduced, &candidate)?;
                    cube = restored;
                    i = 0;
                }
                BlockOutcome::Predecessor(_) => {
                    i += 1;
                }
            }
        }
        Ok(cube)
    }

    /// Fuzz-reached states as generalized initial frames: true when some
    /// state concretely reached within `level` steps satisfies `cube`
    /// (every cube literal agrees with the full state assignment).
    /// Generalisation skips such candidates — consecution would reject
    /// them anyway (the state is reachable), so this is a free syntactic
    /// pre-filter, exactly like the init-disjointness check.
    fn hits_reached(&self, cube: &Cube, level: usize) -> bool {
        !self.reached.is_empty()
            && self
                .reached
                .iter()
                .any(|(s, d)| *d <= level && is_subset(cube, s))
    }

    /// Pushes clauses forward; returns the level whose frame emptied, if any.
    fn propagate(&mut self) -> Result<Option<usize>, ()> {
        for level in 1..self.top_level() {
            let cubes = self.frames[level].clone();
            let mut remaining = Vec::new();
            for cube in cubes {
                // SAT?(F_level ∧ T ∧ cube′)
                let mut assumptions = self.frame_assumptions(level);
                assumptions.extend(cube.iter().map(|&l| self.cube_lit1(l)));
                match self.u.solve_with(&assumptions) {
                    SolveResult::Unsat => {
                        self.add_blocked_cube(&cube, level + 1);
                    }
                    SolveResult::Sat => remaining.push(cube),
                    SolveResult::Canceled => return Err(()),
                }
            }
            self.frames[level] = remaining;
            if self.frames[level].is_empty() {
                return Ok(Some(level));
            }
        }
        Ok(None)
    }
}

enum LiftTarget {
    Bad,
    SuccessorCube(Cube),
}

enum BlockOutcome {
    Blocked { reduced: Cube },
    Predecessor(Cube),
}

impl PdrState {
    /// Polls the exchange bus between SAT queries and asserts foreign
    /// invariant lemmas (and invariant clauses) at both frames of the
    /// running instance — the in-place equivalent of conjoining them
    /// onto the netlist as assumes, which is sound because a lemma is
    /// init-true and inductive under the same assumes this instance
    /// asserts. Shared learnt clauses are *not* importable here: they
    /// are consequences of the reset-initialised unrolling, and this
    /// instance is free-init.
    fn import_lemmas(&mut self, ctx: &mut SharedContext) {
        for item in ctx.poll() {
            match &*item {
                ExchangeItem::Lemma(l) => {
                    self.u.assert_lemma_at(l.bit, 0);
                    self.u.assert_lemma_at(l.bit, 1);
                    ctx.note_imported(1);
                }
                ExchangeItem::Invariant(inv) => {
                    self.u.assert_clause_at(&inv.lits, 0);
                    self.u.assert_clause_at(&inv.lits, 1);
                    ctx.note_imported(1);
                }
                ExchangeItem::Obligation(ob) => {
                    // A fuzz-proven-reachable deep state. Keep only the
                    // literals over latches active in *this* instance;
                    // the rest of the assignment carries no information
                    // here.
                    let mut cube: Cube = ob
                        .cube
                        .iter()
                        .copied()
                        .filter(|&(latch, _)| {
                            (latch as usize) < self.latch_pos.len()
                                && self.latch_pos[latch as usize] != usize::MAX
                        })
                        .collect();
                    cube.sort_unstable();
                    if !cube.is_empty() {
                        self.reached.push((cube, ob.depth));
                        ctx.note_obligations(1);
                    }
                }
                // Learnt clauses need a reset-initialised unrolling;
                // frontier clauses are not inductive — both unusable here.
                ExchangeItem::Clause(_) | ExchangeItem::Frontier(_) => {}
            }
        }
    }

    /// Directed reachability probes from imported obligations: for each
    /// newly admitted fuzz-reached state `s` (reachable at `depth`), ask
    /// SAT?(`s` ∧ T ∧ bad′) — is a bad state *one symbolic transition*
    /// away from it? The fuzzer only drove one concrete input pattern
    /// past `s`; the solver closes over all of them. A hit is a genuine
    /// counterexample at `depth + 1` (the witness prefix is the fuzzer's
    /// own concrete run), reported exactly like a regressed-to-init
    /// obligation so the portfolio re-extracts the trace through BMC.
    fn probe_obligations(&mut self) -> Result<Option<usize>, ()> {
        while self.probed < self.reached.len() {
            let (cube, depth) = self.reached[self.probed].clone();
            self.probed += 1;
            let mut assumptions: Vec<Lit> = cube.iter().map(|&l| self.cube_lit0(l)).collect();
            assumptions.push(self.bad1);
            match self.u.solve_with(&assumptions) {
                SolveResult::Sat => return Ok(Some(depth + 1)),
                SolveResult::Unsat => {}
                SolveResult::Canceled => return Err(()),
            }
        }
        Ok(None)
    }

    /// Publishes the converged inductive invariant onto the exchange
    /// bus: at the fixpoint `F_level == F_{level+1}`, the frame clauses
    /// at levels above `level` form (with the property) an inductive,
    /// init-true invariant relative to the shared assumes — every
    /// blocked cube was checked init-disjoint before it was added, and
    /// propagation just proved the set closed under the transition
    /// relation. Shortest clauses (strongest per literal) go first;
    /// the export is capped so a clause-heavy proof cannot flood the
    /// bus.
    fn export_invariant(&self, ctx: &SharedContext, empty_level: usize) {
        const MAX_EXPORTED_CLAUSES: usize = 256;
        if !ctx.is_attached() {
            // Sequential mode and detached lanes: skip the collect/sort
            // work whose publications would all be no-ops.
            return;
        }
        let mut cubes: Vec<&Cube> = self.frames[empty_level + 1..].iter().flatten().collect();
        cubes.sort_by_key(|c| c.len());
        for (i, cube) in cubes.into_iter().take(MAX_EXPORTED_CLAUSES).enumerate() {
            let lits: Vec<(csl_hdl::Bit, bool)> = cube
                .iter()
                .map(|&(latch, val)| {
                    // ¬cube: some literal of the cube is flipped.
                    (self.ts.aig().latches()[latch as usize].output, !val)
                })
                .collect();
            ctx.publish_invariant(format!("pdr-inv-{i}"), lits);
        }
    }

    /// Publishes a few shortest *frontier* clauses after each clean
    /// propagation round (no fixpoint yet). These are init-true but not
    /// inductive, so they ride the bus as
    /// [`crate::exchange::SharedFrontier`] items — solver lanes ignore
    /// them; the fuzzer's rejection filter uses their init-truth to skip
    /// stimuli that cannot satisfy the contract assumes at reset. Capped
    /// and deduplicated: frontiers move every round and the bus must not
    /// fill with superseded clauses.
    fn export_frontier(&mut self, ctx: &SharedContext) {
        const MAX_FRONTIER_CLAUSES: usize = 64;
        const PER_ROUND: usize = 8;
        if !ctx.is_attached() || self.frontier_exported >= MAX_FRONTIER_CLAUSES {
            return;
        }
        let level = self.top_level();
        let mut cubes: Vec<Cube> = self.frames[level].to_vec();
        cubes.sort_by_key(Cube::len);
        let mut published = 0;
        for cube in cubes {
            if published >= PER_ROUND || self.frontier_exported >= MAX_FRONTIER_CLAUSES {
                break;
            }
            if !self.frontier_seen.insert(cube.clone()) {
                continue;
            }
            // ¬cube as a disjunction over latch indices.
            let lits: Vec<(u32, bool)> = cube.iter().map(|&(latch, val)| (latch, !val)).collect();
            let n = self.frontier_exported;
            ctx.publish_frontier(format!("pdr-front-{level}-{n}"), lits, level);
            self.frontier_exported += 1;
            published += 1;
        }
    }
}

/// Runs IC3. See the module docs.
pub fn pdr(ts: &Arc<TransitionSystem>, opts: PdrOptions) -> PdrResult {
    pdr_with(ts, opts, &mut SharedContext::disabled(Lane::Pdr))
}

/// [`pdr`] attached to the exchange bus: between frontier iterations the
/// running solver imports invariant lemmas (see
/// [`PdrState::import_lemmas`]), shrinking the reachable-state
/// overapproximation it has to strengthen against.
pub fn pdr_with(
    ts: &Arc<TransitionSystem>,
    opts: PdrOptions,
    ctx: &mut SharedContext,
) -> PdrResult {
    pdr_with_stats(ts, opts, ctx).0
}

/// [`pdr_with`] that also returns the cumulative statistics of the
/// underlying solver instance, for the per-lane diagnostics block of the
/// check report. PDR's instance is rebuilt per call (its frame clauses
/// are level-indexed and not meaningful across netlists), so unlike BMC
/// and k-induction there is no warm session to park — the stats are the
/// whole story.
pub fn pdr_with_stats(
    ts: &Arc<TransitionSystem>,
    opts: PdrOptions,
    ctx: &mut SharedContext,
) -> (PdrResult, SolverStats) {
    let mut st = PdrState::new(ts, &opts);
    let result = pdr_loop(&mut st, &opts, ctx);
    (result, st.u.solver.stats)
}

fn pdr_loop(st: &mut PdrState, opts: &PdrOptions, ctx: &mut SharedContext) -> PdrResult {
    // Depth-0 base case: SAT?(Init ∧ bad).
    let mut base_assumptions = vec![st.acts[0], st.bad0];
    match st.u.solve_with(&base_assumptions) {
        SolveResult::Sat => return PdrResult::Cex { depth_hint: 0 },
        SolveResult::Canceled => return PdrResult::Timeout,
        SolveResult::Unsat => {}
    }
    // Depth-1 base case: SAT?(Init ∧ T ∧ bad′).
    base_assumptions = vec![st.acts[0], st.bad1];
    match st.u.solve_with(&base_assumptions) {
        SolveResult::Sat => return PdrResult::Cex { depth_hint: 1 },
        SolveResult::Canceled => return PdrResult::Timeout,
        SolveResult::Unsat => {}
    }

    st.push_level(); // level 1
    loop {
        if st.out_of_time() {
            return PdrResult::Timeout;
        }
        st.import_lemmas(ctx);
        match st.probe_obligations() {
            Err(()) => return PdrResult::Timeout,
            Ok(Some(depth_hint)) => return PdrResult::Cex { depth_hint },
            Ok(None) => {}
        }
        let frontier = st.top_level();
        // Exhaust bad states reachable at the frontier.
        loop {
            let bad_cube = match st.bad_cube_at(frontier) {
                Ok(b) => b,
                Err(()) => return PdrResult::Timeout,
            };
            let Some(cube) = bad_cube else { break };
            // Block it (and its predecessors) recursively.
            let mut queue: BinaryHeap<Obligation> = BinaryHeap::new();
            st.seq += 1;
            queue.push(Obligation {
                level: frontier,
                seq: st.seq,
                cube,
            });
            while let Some(ob) = queue.pop() {
                if st.out_of_time() {
                    return PdrResult::Timeout;
                }
                if ob.level == 0 {
                    return PdrResult::Cex {
                        depth_hint: frontier + 1,
                    };
                }
                // Already blocked at this level? (cheap subsumption check)
                let subsumed = st.frames[ob.level..]
                    .iter()
                    .flatten()
                    .any(|c| is_subset(c, &ob.cube));
                if subsumed {
                    continue;
                }
                match st.intersects_init(&ob.cube) {
                    Ok(true) => {
                        return PdrResult::Cex {
                            depth_hint: frontier + 1,
                        };
                    }
                    Ok(false) => {}
                    Err(()) => return PdrResult::Timeout,
                }
                match st.try_block(&ob.cube, ob.level) {
                    Err(()) => return PdrResult::Timeout,
                    Ok(BlockOutcome::Blocked { reduced }) => {
                        let reduced = match st.restore_init_disjoint(reduced, &ob.cube) {
                            Ok(c) => c,
                            Err(()) => return PdrResult::Timeout,
                        };
                        let generalized = match st.generalize(reduced, ob.level) {
                            Ok(c) => c,
                            Err(()) => return PdrResult::Timeout,
                        };
                        st.add_blocked_cube(&generalized, ob.level);
                        // Chase the cube forward for deeper counterexamples.
                        if ob.level < frontier {
                            st.seq += 1;
                            queue.push(Obligation {
                                level: ob.level + 1,
                                seq: st.seq,
                                cube: ob.cube,
                            });
                        }
                    }
                    Ok(BlockOutcome::Predecessor(pred)) => {
                        st.seq += 1;
                        queue.push(Obligation {
                            level: ob.level - 1,
                            seq: st.seq,
                            cube: pred,
                        });
                        st.seq += 1;
                        queue.push(ob);
                    }
                }
            }
        }
        // Frontier clean: push clauses forward, check for a fixpoint.
        match st.propagate() {
            Err(()) => return PdrResult::Timeout,
            Ok(Some(empty_level)) => {
                // Convergence: hand the final inductive invariant to the
                // other lanes before reporting the proof (ROADMAP: "PDR
                // exporting its frame clauses / final invariant back
                // onto the bus").
                st.export_invariant(ctx, empty_level);
                let invariant_clauses: usize = st.frames.iter().map(|f| f.len()).sum();
                let invariant: Vec<Cube> = st.frames[empty_level + 1..]
                    .iter()
                    .flatten()
                    .cloned()
                    .collect();
                return PdrResult::Proof {
                    frames: st.top_level(),
                    invariant_clauses,
                    fixpoint_level: empty_level,
                    invariant,
                };
            }
            Ok(None) => st.export_frontier(ctx),
        }
        if st.top_level() >= opts.max_frames {
            return PdrResult::FrameLimit {
                frames: st.top_level(),
            };
        }
        st.push_level();
    }
}

/// `a ⊆ b` for sorted cubes.
fn is_subset(a: &Cube, b: &Cube) -> bool {
    let mut it = b.iter();
    'outer: for la in a {
        for lb in it.by_ref() {
            if lb == la {
                continue 'outer;
            }
            if lb.0 > la.0 {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init, Word};
    use std::time::Instant;

    #[test]
    fn proves_saturating_counter() {
        // 0 -> 1 -> 2 (saturate); bad at 7. k-induction fails without
        // simple-path constraints, PDR proves it by strengthening.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let at2 = d.eq_const(&r.q(), 2);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at2, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 7);
        d.assert_always("never7", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match pdr(&ts, PdrOptions::default()) {
            PdrResult::Proof { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn finds_reachable_bad() {
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 5);
        d.assert_always("no5", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match pdr(&ts, PdrOptions::default()) {
            PdrResult::Cex { depth_hint } => assert!(depth_hint >= 1),
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn bad_at_init_detected() {
        let mut d = Design::new("t");
        let r = d.reg("r", 2, Init::Symbolic);
        d.hold(&r);
        let bad = d.eq_const(&r.q(), 3);
        d.assert_always("no3", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match pdr(&ts, PdrOptions::default()) {
            PdrResult::Cex { depth_hint } => assert_eq!(depth_hint, 0),
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn assumes_enable_proof() {
        // Counter advances only when input x; assume !x; bad unreachable.
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(x, &inc, &r.q());
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 1);
        d.assert_always("no1", bad.not());
        d.assume(x.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match pdr(&ts, PdrOptions::default()) {
            PdrResult::Proof { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_init_with_invariant_region() {
        // r starts anywhere in 0..8 with bit2 clear (assume at init via
        // constrained symbolic start): next keeps bit2 clear; bad = bit2.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Symbolic);
        let inc = d.add_const(&r.q(), 1);
        let masked = Word::from_bits(vec![inc.bit(0), inc.bit(1), csl_hdl::Bit::FALSE]);
        d.set_next(&r, masked);
        let bad = r.q().bit(2);
        d.assert_always("bit2", bad.not());
        // Initial-cycle constraint: an init flag latch gates the assume.
        let flag = d.reg_init_value("is_init", 1, 1);
        let zero = d.lit(1, 0);
        d.set_next(&flag, zero);
        let init_ok = d.implies_bit(flag.q().bit(0), bad.not());
        d.assume(init_ok);
        let ts = TransitionSystem::shared(d.finish(), false);
        match pdr(&ts, PdrOptions::default()) {
            PdrResult::Proof { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn respects_deadline() {
        let mut d = Design::new("t");
        let r = d.reg("r", 8, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 255);
        d.assert_always("no255", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        let r = pdr(
            &ts,
            PdrOptions {
                max_frames: 1000,
                budget: Budget::until(Instant::now()),
            },
        );
        assert!(matches!(r, PdrResult::Timeout), "{r:?}");
    }

    #[test]
    fn imported_obligation_probe_finds_adjacent_bad() {
        use crate::exchange::{Exchange, ExchangeConfig};
        // 3-bit counter 0,1,2,...; bad at 5. Blind PDR regresses from the
        // bad cone; here the fuzz lane hands it the concretely-reached
        // state r=4 at depth 4, and the adjacency probe answers SAT
        // immediately: bad is one transition away.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 5);
        d.assert_always("no5", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);

        let bus = Exchange::new(ExchangeConfig::on());
        let fuzz = SharedContext::attached(bus.clone(), Lane::Fuzz, true, true);
        // r = 4: bit2 set, bits 0/1 clear.
        fuzz.publish_obligation(vec![(0, false), (1, false), (2, true)], 4);
        let mut ctx = SharedContext::attached(bus, Lane::Pdr, true, true);
        match pdr_with(&ts, PdrOptions::default(), &mut ctx) {
            PdrResult::Cex { depth_hint } => assert_eq!(depth_hint, 5),
            other => panic!("expected cex, got {other:?}"),
        }
        let stats = ctx.stats();
        assert_eq!(stats.obligations, 1, "obligation import must be counted");
        assert_eq!(stats.imports, 1);
    }

    #[test]
    fn frontier_clauses_are_published_before_convergence() {
        use crate::exchange::{Exchange, ExchangeConfig};
        // An 8-bit counter with bad at 255 does not converge within 6
        // frames, so every clean propagation round publishes frontier
        // clauses for the fuzzer's rejection filter.
        let mut d = Design::new("t");
        let r = d.reg("r", 8, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 255);
        d.assert_always("no255", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        let bus = Exchange::new(ExchangeConfig::on());
        let mut ctx = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
        let r = pdr_with(
            &ts,
            PdrOptions {
                max_frames: 6,
                budget: Budget::unlimited(),
            },
            &mut ctx,
        );
        assert!(matches!(r, PdrResult::FrameLimit { .. }), "{r:?}");
        assert!(ctx.exports() > 0, "frontier clauses must be published");
        let mut fuzz = SharedContext::attached(bus, Lane::Fuzz, true, true);
        let items = fuzz.poll();
        assert!(
            items
                .iter()
                .any(|i| matches!(&**i, ExchangeItem::Frontier(f) if f.level > 0)),
            "the bus must carry frontier clauses"
        );
    }

    #[test]
    fn subset_check() {
        let a: Cube = vec![(1, true), (3, false)];
        let b: Cube = vec![(0, true), (1, true), (3, false), (7, true)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        let c: Cube = vec![(1, false)];
        assert!(!is_subset(&c, &b));
    }
}

//! The cross-lane lemma/clause exchange bus.
//!
//! The portfolio of [`crate::portfolio`] races independent engines on the
//! same two-machine instance, so without sharing every solver rediscovers
//! the same facts about the product machine. This module makes the
//! sharing a first-class API: an [`Exchange`] bus that lanes publish to
//! and poll from through a per-lane [`SharedContext`] handle, carrying
//! two kinds of knowledge:
//!
//! * [`SharedClause`] — a learnt clause in *netlist vocabulary*
//!   (disjunction of "bit `b` is true at frame `t`" literals), exported
//!   by the BMC lane at conflict boundaries through the
//!   [`csl_sat::Solver`] export hook. A shared clause is a consequence of
//!   the reset-initialised unrolling `Init ∧ T^k ∧ assumes(0..h)`; the
//!   clause records `h` (as [`SharedClause::assume_frames`]) and its
//!   deepest frame so importers can gate soundness: only a solver that
//!   is itself reset-initialised, has unrolled at least as deep, and has
//!   asserted the assumptions at least as far may add it (in this
//!   portfolio: the k-induction *base* instance).
//! * [`SharedLemma`] — an invariant bit proved inductive (and true in
//!   all constrained initial states) by the Houdini lane, streamed as
//!   soon as the consecution fixpoint lands rather than at filter
//!   completion. A lemma holds in every reachable assume-satisfying
//!   state, so *any* lane may assert it at every frame of a running
//!   solver: BMC prunes its attack search with it, and k-induction/PDR
//!   strengthen their induction hypotheses in place instead of being
//!   respawned on a lemma-conjoined netlist.
//!
//! The bus is an append-only log under a read-write lock ("lock-free-ish":
//! polls take the read side and only publications take the write side,
//! and both are rare next to SAT work); consumers keep a private cursor,
//! so a slow lane never blocks a fast one. Per-lane import/export
//! counters surface through [`crate::LaneResult`] and
//! [`crate::CheckReport::exchange`] into the session reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use csl_hdl::Bit;
use csl_sat::ExportPolicy;

use crate::lane::Lane;

/// Bus-wide knobs, carried by [`crate::CheckOptions::exchange`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExchangeConfig {
    /// Master switch; the default (`false`) reproduces the isolated-lane
    /// portfolio exactly.
    pub enabled: bool,
    /// Export filter: longest clause the BMC lane publishes.
    pub max_clause_len: usize,
    /// Export filter: highest literal-block distance published.
    pub max_clause_lbd: u32,
    /// How many foreign items one [`SharedContext::poll`] call returns.
    pub max_imports_per_poll: usize,
    /// Bus capacity (items); *clause* publications beyond it are counted
    /// and dropped so a clause-happy lane cannot balloon memory. Lemmas
    /// are exempt: their count is bounded by the candidate set, and they
    /// are the highest-value traffic — a BMC clause flood must not evict
    /// them.
    pub capacity: usize,
    /// Adapt the clause [`ExportPolicy`] thresholds at runtime from
    /// observed import hit rates and coverage deltas instead of keeping
    /// the static `max_clause_len`/`max_clause_lbd` knobs: when importers
    /// drain the bus faster than it fills, the filter widens (longer,
    /// higher-LBD clauses are worth shipping); when nothing is consumed,
    /// it tightens back below the static knobs. The decision in force is
    /// logged per lane in [`ExchangeStats`].
    pub adaptive: bool,
}

impl Default for ExchangeConfig {
    fn default() -> ExchangeConfig {
        ExchangeConfig {
            enabled: false,
            max_clause_len: 8,
            max_clause_lbd: 4,
            max_imports_per_poll: 64,
            capacity: 4096,
            adaptive: false,
        }
    }
}

impl ExchangeConfig {
    /// The default knobs with the bus enabled.
    pub fn on() -> ExchangeConfig {
        ExchangeConfig {
            enabled: true,
            ..ExchangeConfig::default()
        }
    }

    /// The disabled default (isolated lanes).
    pub fn off() -> ExchangeConfig {
        ExchangeConfig::default()
    }

    /// The enabled bus with adaptive export thresholds.
    pub fn adaptive() -> ExchangeConfig {
        ExchangeConfig {
            enabled: true,
            adaptive: true,
            ..ExchangeConfig::default()
        }
    }

    /// The *static* solver-level export filter these knobs describe.
    /// Under [`ExchangeConfig::adaptive`] the live filter is
    /// [`Exchange::current_policy`], which starts from this one.
    pub fn export_policy(&self) -> ExportPolicy {
        ExportPolicy {
            max_len: self.max_clause_len,
            max_lbd: self.max_clause_lbd,
        }
    }
}

/// "Bit `bit` is true at frame `frame`" — one literal of a
/// [`SharedClause`], in the netlist vocabulary every lane shares (all
/// portfolio lanes unroll clones of the same [`csl_hdl::Aig`], so node
/// ids are identical across solvers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedLit {
    pub frame: usize,
    pub bit: Bit,
}

/// A learnt clause translated out of solver numbering. Implied by
/// `Init ∧ T^max_frame ∧ assumes(0..assume_frames-1)` of the shared
/// netlist; see the import gate on [`crate::Unroller::can_import`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedClause {
    /// The disjunction, every literal in netlist vocabulary.
    pub lits: Vec<TimedLit>,
    /// Deepest frame referenced.
    pub max_frame: usize,
    /// Number of frames whose assume bits were asserted in the exporting
    /// solver when the clause was learnt.
    pub assume_frames: usize,
    pub source: Lane,
}

/// An invariant bit: true in all constrained initial states and inductive
/// under the constrained transition relation (a Houdini survivor), hence
/// true in every reachable assume-satisfying state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedLemma {
    pub name: String,
    pub bit: Bit,
    pub source: Lane,
}

/// One clause of an inductive invariant, in netlist vocabulary: the
/// disjunction of "bit `b` has value `v`" over `lits`. Published by the
/// PDR lane at convergence (its frame clauses at the fixpoint are
/// init-true and inductive *as a set*, relative to the shared assumes),
/// so each clause holds in every reachable assume-satisfying state —
/// any lane may assert it at any frame of a running solver, exactly
/// like a [`SharedLemma`], just in clause rather than single-bit form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedInvariant {
    pub name: String,
    /// The disjunction; `(bit, value)` reads "bit takes `value`".
    pub lits: Vec<(Bit, bool)>,
    pub source: Lane,
}

/// A concretely-reached deep state, exported by the coverage-guided fuzz
/// lane (see `csl_cover`) as a *proof obligation* for PDR: the cube is a
/// full assignment over the shared netlist's active latches that
/// simulation actually visited `depth` cycles after an assume-consistent
/// reset. PDR consumes it two ways: as a directed reachability probe (is
/// a bad state one transition away from this known-reachable state?) and
/// as a generalized initial frame (generalization must not block a cube
/// containing a state the fuzzer has proven reachable at that depth).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedObligation {
    /// Full assignment over active latches, `(latch index, value)`,
    /// sorted by latch index. Latch indices — not [`Bit`]s — because the
    /// consumer side may be a simulator as well as a solver.
    pub cube: Vec<(u32, bool)>,
    /// Reset-relative cycle at which simulation reached the state (the
    /// whole prefix satisfied the contract assumes).
    pub depth: usize,
    pub source: Lane,
}

/// An init-true frame clause from a *non-converged* PDR frontier. Unlike
/// a [`SharedInvariant`] clause it is **not** known inductive — it only
/// says "no assume-consistent state reachable in ≤ `level` steps
/// satisfies the negated cube", and it is init-true by PDR's
/// init-disjointness check. Solver lanes must therefore ignore it; its
/// consumer is the fuzzer's rejection filter, which may soundly skip a
/// stimulus whose *reset state* falsifies the clause (such a state
/// cannot satisfy the assumes at cycle 0, so no valid trial starts
/// there).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedFrontier {
    pub name: String,
    /// The disjunction over latch indices; `(latch, value)` reads "latch
    /// takes `value`". Falsified only when every latch differs.
    pub lits: Vec<(u32, bool)>,
    /// Frame the clause was proven at.
    pub level: usize,
    pub source: Lane,
}

/// One bus item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeItem {
    Clause(SharedClause),
    Lemma(SharedLemma),
    Invariant(SharedInvariant),
    Obligation(SharedObligation),
    Frontier(SharedFrontier),
}

impl ExchangeItem {
    /// The lane that published this item.
    pub fn source(&self) -> Lane {
        match self {
            ExchangeItem::Clause(c) => c.source,
            ExchangeItem::Lemma(l) => l.source,
            ExchangeItem::Invariant(i) => i.source,
            ExchangeItem::Obligation(o) => o.source,
            ExchangeItem::Frontier(f) => f.source,
        }
    }
}

/// Per-lane bus traffic, as recorded in [`crate::CheckReport::exchange`]
/// and the session-API reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeStats {
    pub lane: Lane,
    /// Items this lane pulled off the bus and applied to its solvers.
    pub imports: usize,
    /// Items this lane published.
    pub exports: usize,
    /// Of `imports`, how many were fuzz-reached [`SharedObligation`]s.
    pub obligations: usize,
    /// The clause export-filter length threshold in force when the lane
    /// finished (equals the static knob unless the bus is adaptive).
    pub policy_len: usize,
    /// The clause export-filter LBD threshold in force at the end.
    pub policy_lbd: u32,
    /// Whether the thresholds were adapted at runtime.
    pub adaptive: bool,
}

impl ExchangeStats {
    /// Stats with zero traffic and detached-bus policy fields, as lanes
    /// without a live bus report them.
    pub fn empty(lane: Lane) -> ExchangeStats {
        ExchangeStats {
            lane,
            imports: 0,
            exports: 0,
            obligations: 0,
            policy_len: 0,
            policy_lbd: 0,
            adaptive: false,
        }
    }
}

/// The shared bus. Create one per portfolio race with [`Exchange::new`]
/// and hand each lane a [`SharedContext`] via
/// [`SharedContext::attached`].
#[derive(Debug)]
pub struct Exchange {
    config: ExchangeConfig,
    items: RwLock<Vec<Arc<ExchangeItem>>>,
    dropped: AtomicUsize,
    /// Fetch calls across all lanes (the denominator of the import hit
    /// rate the adaptive policy watches).
    polls: AtomicUsize,
    /// Items handed to importers across all lanes.
    fetched: AtomicUsize,
    /// New-coverage events noted by the fuzz lane; a moving coverage
    /// frontier keeps the adaptive filter wide.
    coverage_delta: AtomicUsize,
}

impl Exchange {
    pub fn new(config: ExchangeConfig) -> Arc<Exchange> {
        Arc::new(Exchange {
            config,
            items: RwLock::new(Vec::new()),
            dropped: AtomicUsize::new(0),
            polls: AtomicUsize::new(0),
            fetched: AtomicUsize::new(0),
            coverage_delta: AtomicUsize::new(0),
        })
    }

    pub fn config(&self) -> &ExchangeConfig {
        &self.config
    }

    /// The clause export filter currently in force. Static configs
    /// return [`ExchangeConfig::export_policy`] unchanged; adaptive
    /// configs derive the thresholds from the observed import hit rate
    /// (items drained per poll, across all lanes) and from coverage
    /// deltas noted by the fuzz lane:
    ///
    /// * importers keeping up with publications (≥ 1 item per poll on
    ///   average) ⇒ widen to 2× length, +2 LBD — the traffic is being
    ///   used, so ship more of it;
    /// * a warmed-up bus (≥ 16 polls) that nobody has drained ⇒ tighten
    ///   to half length, LBD capped at 2 — only glue clauses are worth
    ///   the propagation overhead;
    /// * any new-coverage events ⇒ +2 length on top, keeping the filter
    ///   open while the fuzz frontier is still moving.
    pub fn current_policy(&self) -> ExportPolicy {
        let base = self.config.export_policy();
        if !self.config.adaptive {
            return base;
        }
        let polls = self.polls.load(Ordering::Relaxed);
        let hits = self.fetched.load(Ordering::Relaxed);
        let mut policy = base;
        if polls >= 16 && hits == 0 {
            policy.max_len = (base.max_len / 2).max(2);
            policy.max_lbd = base.max_lbd.min(2);
        } else if polls > 0 && hits >= polls {
            policy.max_len = base.max_len.saturating_mul(2);
            policy.max_lbd = base.max_lbd.saturating_add(2);
        }
        if self.coverage_delta.load(Ordering::Relaxed) > 0 {
            policy.max_len = policy.max_len.saturating_add(2);
        }
        policy
    }

    /// New-coverage events noted so far (see
    /// [`SharedContext::note_coverage_delta`]).
    pub fn coverage_delta(&self) -> usize {
        self.coverage_delta.load(Ordering::Relaxed)
    }

    /// Items published so far (including ones every consumer has seen).
    pub fn len(&self) -> usize {
        self.items.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publications dropped at the capacity cap.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends an item. Clauses beyond the capacity cap are dropped (and
    /// counted); lemmas and invariant clauses always land — see
    /// [`ExchangeConfig::capacity`].
    fn publish(&self, item: ExchangeItem) -> bool {
        let mut items = self.items.write().unwrap();
        if matches!(item, ExchangeItem::Clause(_)) && items.len() >= self.config.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        items.push(Arc::new(item));
        true
    }

    /// Scans forward from `cursor`, collecting up to `max` items not
    /// published by `lane`; returns the batch and the new cursor.
    fn fetch(&self, cursor: usize, lane: Lane, max: usize) -> (Vec<Arc<ExchangeItem>>, usize) {
        let items = self.items.read().unwrap();
        let mut out = Vec::new();
        let mut pos = cursor;
        while pos < items.len() && out.len() < max {
            let item = &items[pos];
            pos += 1;
            if item.source() != lane {
                out.push(item.clone());
            }
        }
        self.polls.fetch_add(1, Ordering::Relaxed);
        self.fetched.fetch_add(out.len(), Ordering::Relaxed);
        (out, pos)
    }
}

/// A clause-publication handle usable from inside the
/// [`csl_sat::Solver`] export hook (the hook closure owns one; the
/// surrounding [`SharedContext`] stays with the engine).
#[derive(Clone)]
pub struct ClauseExporter {
    bus: Arc<Exchange>,
    lane: Lane,
    exports: Arc<AtomicUsize>,
}

impl ClauseExporter {
    /// The publishing lane.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Publishes one translated clause; counts the export only when the
    /// bus accepted it.
    pub fn publish(&self, clause: SharedClause) {
        if self.bus.publish(ExchangeItem::Clause(clause)) {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One lane's handle on the bus: publish survivors/clauses, poll foreign
/// items, and count traffic for the reports. A disabled context (no bus)
/// makes every operation a cheap no-op, so engine code is written once.
pub struct SharedContext {
    bus: Option<Arc<Exchange>>,
    lane: Lane,
    cursor: usize,
    import_enabled: bool,
    export_enabled: bool,
    imports: Arc<AtomicUsize>,
    exports: Arc<AtomicUsize>,
    obligations: Arc<AtomicUsize>,
}

impl SharedContext {
    /// A context with no bus: every publish/poll is a no-op. This is what
    /// lanes get when the exchange is disabled (and what sequential-mode
    /// engine calls use).
    pub fn disabled(lane: Lane) -> SharedContext {
        SharedContext {
            bus: None,
            lane,
            cursor: 0,
            import_enabled: false,
            export_enabled: false,
            imports: Arc::new(AtomicUsize::new(0)),
            exports: Arc::new(AtomicUsize::new(0)),
            obligations: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// A context attached to `bus`, with per-lane import/export opt-outs
    /// (from [`crate::LaneBudget::exchange`]).
    pub fn attached(bus: Arc<Exchange>, lane: Lane, import: bool, export: bool) -> SharedContext {
        SharedContext {
            bus: Some(bus),
            lane,
            cursor: 0,
            import_enabled: import,
            export_enabled: export,
            imports: Arc::new(AtomicUsize::new(0)),
            exports: Arc::new(AtomicUsize::new(0)),
            obligations: Arc::new(AtomicUsize::new(0)),
        }
    }

    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Whether this lane is attached to a live bus at all.
    pub fn is_attached(&self) -> bool {
        self.bus.is_some()
    }

    /// The bus configuration, when attached.
    pub fn config(&self) -> Option<&ExchangeConfig> {
        self.bus.as_deref().map(Exchange::config)
    }

    /// A clause-publication handle for the solver export hook, or `None`
    /// when this lane does not export.
    pub fn clause_exporter(&self) -> Option<ClauseExporter> {
        let bus = self.bus.as_ref()?;
        if !self.export_enabled {
            return None;
        }
        Some(ClauseExporter {
            bus: bus.clone(),
            lane: self.lane,
            exports: self.exports.clone(),
        })
    }

    /// Publishes a proven lemma.
    pub fn publish_lemma(&self, name: impl Into<String>, bit: Bit) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Lemma(SharedLemma {
            name: name.into(),
            bit,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes one clause of a proven inductive invariant (PDR's frame
    /// clauses at convergence). Like lemmas, invariant clauses bypass
    /// the capacity cap — they are final, bounded in number, and the
    /// highest-value traffic a proof engine can emit.
    pub fn publish_invariant(&self, name: impl Into<String>, lits: Vec<(Bit, bool)>) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Invariant(SharedInvariant {
            name: name.into(),
            lits,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes a fuzz-reached state as a PDR proof obligation. Like
    /// lemmas, obligations bypass the capacity cap: the fuzzer self-caps
    /// how many it exports and each one is high-value directed work for
    /// the proof lanes.
    pub fn publish_obligation(&self, cube: Vec<(u32, bool)>, depth: usize) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled || cube.is_empty() {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Obligation(SharedObligation {
            cube,
            depth,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes one init-true frontier clause (PDR's non-converged frame
    /// clauses, for the fuzzer's rejection filter).
    pub fn publish_frontier(&self, name: impl Into<String>, lits: Vec<(u32, bool)>, level: usize) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled || lits.is_empty() {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Frontier(SharedFrontier {
            name: name.into(),
            lits,
            level,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The live clause export filter (adaptive buses move it at runtime),
    /// or `None` when detached.
    pub fn export_policy(&self) -> Option<ExportPolicy> {
        self.bus.as_deref().map(Exchange::current_policy)
    }

    /// Records `n` new-coverage events for the adaptive export policy.
    pub fn note_coverage_delta(&self, n: usize) {
        if let Some(bus) = &self.bus {
            bus.coverage_delta.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Pulls the next batch of foreign items (bounded by
    /// [`ExchangeConfig::max_imports_per_poll`]), advancing this lane's
    /// cursor. Returns an empty batch when detached or importing is
    /// disabled. Polling does not count as importing — call
    /// [`SharedContext::note_imported`] for items actually applied.
    pub fn poll(&mut self) -> Vec<Arc<ExchangeItem>> {
        let Some(bus) = &self.bus else {
            return Vec::new();
        };
        if !self.import_enabled {
            return Vec::new();
        }
        let (batch, cursor) = bus.fetch(self.cursor, self.lane, bus.config.max_imports_per_poll);
        self.cursor = cursor;
        batch
    }

    /// Records `n` items as applied to this lane's solvers.
    pub fn note_imported(&self, n: usize) {
        self.imports.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` applied items that were fuzz-reached obligations
    /// (counted both as imports and in the obligation breakdown).
    pub fn note_obligations(&self, n: usize) {
        self.imports.fetch_add(n, Ordering::Relaxed);
        self.obligations.fetch_add(n, Ordering::Relaxed);
    }

    pub fn imports(&self) -> usize {
        self.imports.load(Ordering::Relaxed)
    }

    pub fn exports(&self) -> usize {
        self.exports.load(Ordering::Relaxed)
    }

    pub fn obligations(&self) -> usize {
        self.obligations.load(Ordering::Relaxed)
    }

    /// This lane's traffic counters, plus the export policy in force.
    pub fn stats(&self) -> ExchangeStats {
        let policy = self.bus.as_deref().map(Exchange::current_policy);
        ExchangeStats {
            lane: self.lane,
            imports: self.imports(),
            exports: self.exports(),
            obligations: self.obligations(),
            policy_len: policy.map_or(0, |p| p.max_len),
            policy_lbd: policy.map_or(0, |p| p.max_lbd),
            adaptive: self.bus.as_deref().is_some_and(|b| b.config().adaptive),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lemma(name: &str, source: Lane) -> ExchangeItem {
        ExchangeItem::Lemma(SharedLemma {
            name: name.into(),
            bit: Bit::from_packed(2),
            source,
        })
    }

    #[test]
    fn poll_skips_own_items_and_tracks_cursor() {
        let bus = Exchange::new(ExchangeConfig::on());
        let mut bmc = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        let kind = SharedContext::attached(bus.clone(), Lane::KInduction, true, true);
        kind.publish_lemma("from-kind", Bit::from_packed(2));
        bus.publish(lemma("from-houdini", Lane::Houdini));
        bmc.publish_lemma("from-bmc", Bit::from_packed(4));

        let batch = bmc.poll();
        assert_eq!(batch.len(), 2, "own item must be skipped");
        assert!(bmc.poll().is_empty(), "cursor must advance");

        bus.publish(lemma("late", Lane::Pdr));
        assert_eq!(bmc.poll().len(), 1);
        bmc.note_imported(3);
        assert_eq!(bmc.stats().imports, 3);
        assert_eq!(bmc.stats().exports, 1);
        assert_eq!(kind.stats().exports, 1);
    }

    fn clause(source: Lane) -> SharedClause {
        SharedClause {
            lits: vec![TimedLit {
                frame: 0,
                bit: Bit::from_packed(2),
            }],
            max_frame: 0,
            assume_frames: 0,
            source,
        }
    }

    #[test]
    fn capacity_drops_clauses_but_never_lemmas() {
        let bus = Exchange::new(ExchangeConfig {
            enabled: true,
            capacity: 2,
            ..ExchangeConfig::default()
        });
        let ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        let exporter = ctx.clause_exporter().unwrap();
        exporter.publish(clause(Lane::Bmc));
        exporter.publish(clause(Lane::Bmc));
        exporter.publish(clause(Lane::Bmc));
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.dropped(), 1);
        assert_eq!(ctx.exports(), 2, "dropped publication must not count");
        // A lemma still lands on the full bus: a clause flood must not
        // evict the highest-value traffic.
        ctx.publish_lemma("late survivor", Bit::from_packed(4));
        assert_eq!(bus.len(), 3);
        assert_eq!(ctx.exports(), 3);
    }

    #[test]
    fn disabled_context_is_inert() {
        let mut ctx = SharedContext::disabled(Lane::Bmc);
        ctx.publish_lemma("x", Bit::from_packed(2));
        assert!(ctx.poll().is_empty());
        assert!(ctx.clause_exporter().is_none());
        assert_eq!(ctx.stats().exports, 0);
    }

    #[test]
    fn obligations_and_frontiers_flow_and_are_counted() {
        let bus = Exchange::new(ExchangeConfig::on());
        let fuzz = SharedContext::attached(bus.clone(), Lane::Fuzz, true, true);
        let mut pdr = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
        fuzz.publish_obligation(vec![(0, true), (3, false)], 9);
        pdr.publish_frontier("pdr-front-2-0", vec![(1, true)], 2);
        assert_eq!(fuzz.stats().exports, 1);
        assert_eq!(pdr.stats().exports, 1);

        let batch = pdr.poll();
        assert_eq!(
            batch.len(),
            1,
            "pdr sees the obligation, not its own clause"
        );
        match batch[0].as_ref() {
            ExchangeItem::Obligation(o) => {
                assert_eq!(o.depth, 9);
                assert_eq!(o.cube, vec![(0, true), (3, false)]);
                assert_eq!(o.source, Lane::Fuzz);
            }
            other => panic!("expected obligation, got {other:?}"),
        }
        pdr.note_obligations(1);
        let stats = pdr.stats();
        assert_eq!(stats.imports, 1);
        assert_eq!(stats.obligations, 1);

        // Empty payloads are silently refused.
        fuzz.publish_obligation(Vec::new(), 1);
        pdr.publish_frontier("empty", Vec::new(), 1);
        assert_eq!(bus.len(), 2);
    }

    #[test]
    fn static_policy_is_untouched_by_traffic() {
        let bus = Exchange::new(ExchangeConfig::on());
        let ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        for _ in 0..32 {
            let mut c = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
            c.poll();
        }
        let policy = bus.current_policy();
        assert_eq!(policy.max_len, 8);
        assert_eq!(policy.max_lbd, 4);
        let stats = ctx.stats();
        assert!(!stats.adaptive);
        assert_eq!((stats.policy_len, stats.policy_lbd), (8, 4));
    }

    #[test]
    fn adaptive_policy_tracks_hit_rate_and_coverage() {
        let bus = Exchange::new(ExchangeConfig::adaptive());
        let fuzz = SharedContext::attached(bus.clone(), Lane::Fuzz, true, true);

        // Fresh bus: too few polls to judge, thresholds stay static.
        assert_eq!(bus.current_policy().max_len, 8);

        // A warmed-up bus nobody drains tightens the filter.
        for _ in 0..16 {
            let mut c = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
            c.poll();
        }
        let tight = bus.current_policy();
        assert_eq!(tight.max_len, 4);
        assert_eq!(tight.max_lbd, 2);

        // Importers consuming at >= 1 item/poll widen it again; the
        // hit counter only moves when fetch returns foreign items.
        for i in 0..64 {
            fuzz.publish_lemma(format!("l{i}"), Bit::from_packed(2));
        }
        let mut pdr = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
        while !pdr.poll().is_empty() {}
        let wide = bus.current_policy();
        assert_eq!(wide.max_len, 16);
        assert_eq!(wide.max_lbd, 6);

        // Coverage deltas keep the filter open a little wider still,
        // and the decision is logged in the lane stats.
        fuzz.note_coverage_delta(3);
        assert_eq!(bus.coverage_delta(), 3);
        assert_eq!(bus.current_policy().max_len, 18);
        let stats = fuzz.stats();
        assert!(stats.adaptive);
        assert_eq!(stats.policy_len, 18);
    }

    #[test]
    fn export_opt_out_blocks_publication() {
        let bus = Exchange::new(ExchangeConfig::on());
        let ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, false);
        ctx.publish_lemma("x", Bit::from_packed(2));
        assert!(bus.is_empty());
        assert!(ctx.clause_exporter().is_none());

        let mut no_import = SharedContext::attached(bus.clone(), Lane::Pdr, false, true);
        no_import.publish_lemma("y", Bit::from_packed(2));
        assert_eq!(bus.len(), 1);
        assert!(no_import.poll().is_empty(), "import opt-out");
    }
}

//! The cross-lane lemma/clause exchange bus.
//!
//! The portfolio of [`crate::portfolio`] races independent engines on the
//! same two-machine instance, so without sharing every solver rediscovers
//! the same facts about the product machine. This module makes the
//! sharing a first-class API: an [`Exchange`] bus that lanes publish to
//! and poll from through a per-lane [`SharedContext`] handle, carrying
//! two kinds of knowledge:
//!
//! * [`SharedClause`] — a learnt clause in *netlist vocabulary*
//!   (disjunction of "bit `b` is true at frame `t`" literals), exported
//!   by the BMC lane at conflict boundaries through the
//!   [`csl_sat::Solver`] export hook. A shared clause is a consequence of
//!   the reset-initialised unrolling `Init ∧ T^k ∧ assumes(0..h)`; the
//!   clause records `h` (as [`SharedClause::assume_frames`]) and its
//!   deepest frame so importers can gate soundness: only a solver that
//!   is itself reset-initialised, has unrolled at least as deep, and has
//!   asserted the assumptions at least as far may add it (in this
//!   portfolio: the k-induction *base* instance).
//! * [`SharedLemma`] — an invariant bit proved inductive (and true in
//!   all constrained initial states) by the Houdini lane, streamed as
//!   soon as the consecution fixpoint lands rather than at filter
//!   completion. A lemma holds in every reachable assume-satisfying
//!   state, so *any* lane may assert it at every frame of a running
//!   solver: BMC prunes its attack search with it, and k-induction/PDR
//!   strengthen their induction hypotheses in place instead of being
//!   respawned on a lemma-conjoined netlist.
//!
//! The bus is an append-only log under a read-write lock ("lock-free-ish":
//! polls take the read side and only publications take the write side,
//! and both are rare next to SAT work); consumers keep a private cursor,
//! so a slow lane never blocks a fast one. Per-lane import/export
//! counters surface through [`crate::LaneResult`] and
//! [`crate::CheckReport::exchange`] into the session reports.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use csl_hdl::Bit;
use csl_sat::ExportPolicy;

use crate::lane::Lane;

/// Bus-wide knobs, carried by [`crate::CheckOptions::exchange`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExchangeConfig {
    /// Master switch; the default (`false`) reproduces the isolated-lane
    /// portfolio exactly.
    pub enabled: bool,
    /// Export filter: longest clause the BMC lane publishes.
    pub max_clause_len: usize,
    /// Export filter: highest literal-block distance published.
    pub max_clause_lbd: u32,
    /// How many foreign items one [`SharedContext::poll`] call returns.
    pub max_imports_per_poll: usize,
    /// Bus capacity (items); *clause* publications beyond it are counted
    /// and dropped so a clause-happy lane cannot balloon memory. Lemmas
    /// are exempt: their count is bounded by the candidate set, and they
    /// are the highest-value traffic — a BMC clause flood must not evict
    /// them.
    pub capacity: usize,
}

impl Default for ExchangeConfig {
    fn default() -> ExchangeConfig {
        ExchangeConfig {
            enabled: false,
            max_clause_len: 8,
            max_clause_lbd: 4,
            max_imports_per_poll: 64,
            capacity: 4096,
        }
    }
}

impl ExchangeConfig {
    /// The default knobs with the bus enabled.
    pub fn on() -> ExchangeConfig {
        ExchangeConfig {
            enabled: true,
            ..ExchangeConfig::default()
        }
    }

    /// The disabled default (isolated lanes).
    pub fn off() -> ExchangeConfig {
        ExchangeConfig::default()
    }

    /// The solver-level export filter these knobs describe.
    pub fn export_policy(&self) -> ExportPolicy {
        ExportPolicy {
            max_len: self.max_clause_len,
            max_lbd: self.max_clause_lbd,
        }
    }
}

/// "Bit `bit` is true at frame `frame`" — one literal of a
/// [`SharedClause`], in the netlist vocabulary every lane shares (all
/// portfolio lanes unroll clones of the same [`csl_hdl::Aig`], so node
/// ids are identical across solvers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedLit {
    pub frame: usize,
    pub bit: Bit,
}

/// A learnt clause translated out of solver numbering. Implied by
/// `Init ∧ T^max_frame ∧ assumes(0..assume_frames-1)` of the shared
/// netlist; see the import gate on [`crate::Unroller::can_import`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedClause {
    /// The disjunction, every literal in netlist vocabulary.
    pub lits: Vec<TimedLit>,
    /// Deepest frame referenced.
    pub max_frame: usize,
    /// Number of frames whose assume bits were asserted in the exporting
    /// solver when the clause was learnt.
    pub assume_frames: usize,
    pub source: Lane,
}

/// An invariant bit: true in all constrained initial states and inductive
/// under the constrained transition relation (a Houdini survivor), hence
/// true in every reachable assume-satisfying state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedLemma {
    pub name: String,
    pub bit: Bit,
    pub source: Lane,
}

/// One clause of an inductive invariant, in netlist vocabulary: the
/// disjunction of "bit `b` has value `v`" over `lits`. Published by the
/// PDR lane at convergence (its frame clauses at the fixpoint are
/// init-true and inductive *as a set*, relative to the shared assumes),
/// so each clause holds in every reachable assume-satisfying state —
/// any lane may assert it at any frame of a running solver, exactly
/// like a [`SharedLemma`], just in clause rather than single-bit form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedInvariant {
    pub name: String,
    /// The disjunction; `(bit, value)` reads "bit takes `value`".
    pub lits: Vec<(Bit, bool)>,
    pub source: Lane,
}

/// One bus item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeItem {
    Clause(SharedClause),
    Lemma(SharedLemma),
    Invariant(SharedInvariant),
}

impl ExchangeItem {
    /// The lane that published this item.
    pub fn source(&self) -> Lane {
        match self {
            ExchangeItem::Clause(c) => c.source,
            ExchangeItem::Lemma(l) => l.source,
            ExchangeItem::Invariant(i) => i.source,
        }
    }
}

/// Per-lane bus traffic, as recorded in [`crate::CheckReport::exchange`]
/// and the session-API reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeStats {
    pub lane: Lane,
    /// Items this lane pulled off the bus and applied to its solvers.
    pub imports: usize,
    /// Items this lane published.
    pub exports: usize,
}

/// The shared bus. Create one per portfolio race with [`Exchange::new`]
/// and hand each lane a [`SharedContext`] via
/// [`SharedContext::attached`].
#[derive(Debug)]
pub struct Exchange {
    config: ExchangeConfig,
    items: RwLock<Vec<Arc<ExchangeItem>>>,
    dropped: AtomicUsize,
}

impl Exchange {
    pub fn new(config: ExchangeConfig) -> Arc<Exchange> {
        Arc::new(Exchange {
            config,
            items: RwLock::new(Vec::new()),
            dropped: AtomicUsize::new(0),
        })
    }

    pub fn config(&self) -> &ExchangeConfig {
        &self.config
    }

    /// Items published so far (including ones every consumer has seen).
    pub fn len(&self) -> usize {
        self.items.read().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publications dropped at the capacity cap.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends an item. Clauses beyond the capacity cap are dropped (and
    /// counted); lemmas and invariant clauses always land — see
    /// [`ExchangeConfig::capacity`].
    fn publish(&self, item: ExchangeItem) -> bool {
        let mut items = self.items.write().unwrap();
        if matches!(item, ExchangeItem::Clause(_)) && items.len() >= self.config.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        items.push(Arc::new(item));
        true
    }

    /// Scans forward from `cursor`, collecting up to `max` items not
    /// published by `lane`; returns the batch and the new cursor.
    fn fetch(&self, cursor: usize, lane: Lane, max: usize) -> (Vec<Arc<ExchangeItem>>, usize) {
        let items = self.items.read().unwrap();
        let mut out = Vec::new();
        let mut pos = cursor;
        while pos < items.len() && out.len() < max {
            let item = &items[pos];
            pos += 1;
            if item.source() != lane {
                out.push(item.clone());
            }
        }
        (out, pos)
    }
}

/// A clause-publication handle usable from inside the
/// [`csl_sat::Solver`] export hook (the hook closure owns one; the
/// surrounding [`SharedContext`] stays with the engine).
#[derive(Clone)]
pub struct ClauseExporter {
    bus: Arc<Exchange>,
    lane: Lane,
    exports: Arc<AtomicUsize>,
}

impl ClauseExporter {
    /// The publishing lane.
    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Publishes one translated clause; counts the export only when the
    /// bus accepted it.
    pub fn publish(&self, clause: SharedClause) {
        if self.bus.publish(ExchangeItem::Clause(clause)) {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One lane's handle on the bus: publish survivors/clauses, poll foreign
/// items, and count traffic for the reports. A disabled context (no bus)
/// makes every operation a cheap no-op, so engine code is written once.
pub struct SharedContext {
    bus: Option<Arc<Exchange>>,
    lane: Lane,
    cursor: usize,
    import_enabled: bool,
    export_enabled: bool,
    imports: Arc<AtomicUsize>,
    exports: Arc<AtomicUsize>,
}

impl SharedContext {
    /// A context with no bus: every publish/poll is a no-op. This is what
    /// lanes get when the exchange is disabled (and what sequential-mode
    /// engine calls use).
    pub fn disabled(lane: Lane) -> SharedContext {
        SharedContext {
            bus: None,
            lane,
            cursor: 0,
            import_enabled: false,
            export_enabled: false,
            imports: Arc::new(AtomicUsize::new(0)),
            exports: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// A context attached to `bus`, with per-lane import/export opt-outs
    /// (from [`crate::LaneBudget::exchange`]).
    pub fn attached(bus: Arc<Exchange>, lane: Lane, import: bool, export: bool) -> SharedContext {
        SharedContext {
            bus: Some(bus),
            lane,
            cursor: 0,
            import_enabled: import,
            export_enabled: export,
            imports: Arc::new(AtomicUsize::new(0)),
            exports: Arc::new(AtomicUsize::new(0)),
        }
    }

    pub fn lane(&self) -> Lane {
        self.lane
    }

    /// Whether this lane is attached to a live bus at all.
    pub fn is_attached(&self) -> bool {
        self.bus.is_some()
    }

    /// The bus configuration, when attached.
    pub fn config(&self) -> Option<&ExchangeConfig> {
        self.bus.as_deref().map(Exchange::config)
    }

    /// A clause-publication handle for the solver export hook, or `None`
    /// when this lane does not export.
    pub fn clause_exporter(&self) -> Option<ClauseExporter> {
        let bus = self.bus.as_ref()?;
        if !self.export_enabled {
            return None;
        }
        Some(ClauseExporter {
            bus: bus.clone(),
            lane: self.lane,
            exports: self.exports.clone(),
        })
    }

    /// Publishes a proven lemma.
    pub fn publish_lemma(&self, name: impl Into<String>, bit: Bit) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Lemma(SharedLemma {
            name: name.into(),
            bit,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes one clause of a proven inductive invariant (PDR's frame
    /// clauses at convergence). Like lemmas, invariant clauses bypass
    /// the capacity cap — they are final, bounded in number, and the
    /// highest-value traffic a proof engine can emit.
    pub fn publish_invariant(&self, name: impl Into<String>, lits: Vec<(Bit, bool)>) {
        let Some(bus) = &self.bus else { return };
        if !self.export_enabled {
            return;
        }
        let accepted = bus.publish(ExchangeItem::Invariant(SharedInvariant {
            name: name.into(),
            lits,
            source: self.lane,
        }));
        if accepted {
            self.exports.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pulls the next batch of foreign items (bounded by
    /// [`ExchangeConfig::max_imports_per_poll`]), advancing this lane's
    /// cursor. Returns an empty batch when detached or importing is
    /// disabled. Polling does not count as importing — call
    /// [`SharedContext::note_imported`] for items actually applied.
    pub fn poll(&mut self) -> Vec<Arc<ExchangeItem>> {
        let Some(bus) = &self.bus else {
            return Vec::new();
        };
        if !self.import_enabled {
            return Vec::new();
        }
        let (batch, cursor) = bus.fetch(self.cursor, self.lane, bus.config.max_imports_per_poll);
        self.cursor = cursor;
        batch
    }

    /// Records `n` items as applied to this lane's solvers.
    pub fn note_imported(&self, n: usize) {
        self.imports.fetch_add(n, Ordering::Relaxed);
    }

    pub fn imports(&self) -> usize {
        self.imports.load(Ordering::Relaxed)
    }

    pub fn exports(&self) -> usize {
        self.exports.load(Ordering::Relaxed)
    }

    /// This lane's traffic counters.
    pub fn stats(&self) -> ExchangeStats {
        ExchangeStats {
            lane: self.lane,
            imports: self.imports(),
            exports: self.exports(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lemma(name: &str, source: Lane) -> ExchangeItem {
        ExchangeItem::Lemma(SharedLemma {
            name: name.into(),
            bit: Bit::from_packed(2),
            source,
        })
    }

    #[test]
    fn poll_skips_own_items_and_tracks_cursor() {
        let bus = Exchange::new(ExchangeConfig::on());
        let mut bmc = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        let kind = SharedContext::attached(bus.clone(), Lane::KInduction, true, true);
        kind.publish_lemma("from-kind", Bit::from_packed(2));
        bus.publish(lemma("from-houdini", Lane::Houdini));
        bmc.publish_lemma("from-bmc", Bit::from_packed(4));

        let batch = bmc.poll();
        assert_eq!(batch.len(), 2, "own item must be skipped");
        assert!(bmc.poll().is_empty(), "cursor must advance");

        bus.publish(lemma("late", Lane::Pdr));
        assert_eq!(bmc.poll().len(), 1);
        bmc.note_imported(3);
        assert_eq!(bmc.stats().imports, 3);
        assert_eq!(bmc.stats().exports, 1);
        assert_eq!(kind.stats().exports, 1);
    }

    fn clause(source: Lane) -> SharedClause {
        SharedClause {
            lits: vec![TimedLit {
                frame: 0,
                bit: Bit::from_packed(2),
            }],
            max_frame: 0,
            assume_frames: 0,
            source,
        }
    }

    #[test]
    fn capacity_drops_clauses_but_never_lemmas() {
        let bus = Exchange::new(ExchangeConfig {
            enabled: true,
            capacity: 2,
            ..ExchangeConfig::default()
        });
        let ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        let exporter = ctx.clause_exporter().unwrap();
        exporter.publish(clause(Lane::Bmc));
        exporter.publish(clause(Lane::Bmc));
        exporter.publish(clause(Lane::Bmc));
        assert_eq!(bus.len(), 2);
        assert_eq!(bus.dropped(), 1);
        assert_eq!(ctx.exports(), 2, "dropped publication must not count");
        // A lemma still lands on the full bus: a clause flood must not
        // evict the highest-value traffic.
        ctx.publish_lemma("late survivor", Bit::from_packed(4));
        assert_eq!(bus.len(), 3);
        assert_eq!(ctx.exports(), 3);
    }

    #[test]
    fn disabled_context_is_inert() {
        let mut ctx = SharedContext::disabled(Lane::Bmc);
        ctx.publish_lemma("x", Bit::from_packed(2));
        assert!(ctx.poll().is_empty());
        assert!(ctx.clause_exporter().is_none());
        assert_eq!(ctx.stats().exports, 0);
    }

    #[test]
    fn export_opt_out_blocks_publication() {
        let bus = Exchange::new(ExchangeConfig::on());
        let ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, false);
        ctx.publish_lemma("x", Bit::from_packed(2));
        assert!(bus.is_empty());
        assert!(ctx.clause_exporter().is_none());

        let mut no_import = SharedContext::attached(bus.clone(), Lane::Pdr, false, true);
        no_import.publish_lemma("y", Bit::from_packed(2));
        assert_eq!(bus.len(), 1);
        assert!(no_import.poll().is_empty(), "import opt-out");
    }
}

//! k-induction.
//!
//! Proves a property by showing (base) no counterexample exists within `k`
//! steps of the initial states, and (step) any `k` consecutive violation-free
//! assume-satisfying states are followed by another violation-free state.
//! Both halves run in incremental SAT instances that persist across
//! increasing `k`. Optional unique-states ("simple path") constraints make
//! the method complete for finite systems at the cost of quadratic clauses.

use csl_hdl::Bit;
use csl_sat::{Budget, Lit, SolveResult};

use crate::exchange::{ExchangeItem, SharedClause, SharedContext, SharedInvariant};
use crate::lane::Lane;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// Outcome of a k-induction run.
#[derive(Debug)]
pub enum KindResult {
    /// Property proved inductively at depth `k`.
    Proof { k: usize },
    /// A real counterexample surfaced in a base-case check.
    Cex(Box<Trace>),
    /// Not inductive for any tried `k <= max_k`.
    Unknown { max_k_tried: usize },
    /// Budget exhausted.
    Timeout,
}

/// Options for [`k_induction`].
#[derive(Clone, Debug)]
pub struct KindOptions {
    /// Largest induction depth to try.
    pub max_k: usize,
    /// Add pairwise state-distinctness constraints to the step case.
    pub unique_states: bool,
    pub budget: Budget,
}

impl Default for KindOptions {
    fn default() -> Self {
        KindOptions {
            max_k: 10,
            unique_states: false,
            budget: Budget::unlimited(),
        }
    }
}

/// Runs k-induction for `k = 1..=max_k`.
pub fn k_induction(ts: &TransitionSystem, opts: KindOptions) -> KindResult {
    k_induction_with(ts, opts, &mut SharedContext::disabled(Lane::KInduction))
}

/// [`k_induction`] attached to the exchange bus. Between SAT queries it
/// polls the bus and strengthens its *running* solvers in place:
///
/// * foreign invariant lemmas are asserted at every frame of both
///   instances — in the free-init step instance this is the classic
///   "strengthen the induction hypothesis with a known invariant" move,
///   previously only reachable by respawning on a lemma-conjoined
///   netlist;
/// * shared learnt clauses go into the reset-init *base* instance only
///   (they are consequences of the initialised unrolling), gated by
///   [`Unroller::can_import`] and kept pending until the base has
///   unrolled deep enough.
///
/// When new lemmas arrive after the sweep ended inconclusive, the
/// *deepest* step query is retried with them (the incremental solver
/// re-decides it cheaply) — late Houdini survivors can close an
/// induction that was not inductive without them. Only `k = max_k` may
/// be retried: the step instance has accumulated "no bad at frames
/// `0..max_k-1`" units, so any shallower re-query would be vacuously
/// UNSAT and report a false proof.
pub fn k_induction_with(
    ts: &TransitionSystem,
    opts: KindOptions,
    ctx: &mut SharedContext,
) -> KindResult {
    let mut base = Unroller::new(ts, InitMode::Reset);
    base.set_budget(opts.budget.clone());
    let mut step = Unroller::new(ts, InitMode::Free);
    step.set_budget(opts.budget.clone());
    let mut lemmas: Vec<Bit> = Vec::new();
    let mut invs: Vec<SharedInvariant> = Vec::new();
    let mut pending: Vec<SharedClause> = Vec::new();
    // High-water marks so each (lemma/invariant, frame) unit is asserted
    // once per instance.
    let (mut base_applied, mut base_frames) = (0usize, 0usize);
    let (mut step_applied, mut step_frames) = (0usize, 0usize);
    let (mut base_inv_applied, mut base_inv_frames) = (0usize, 0usize);
    let (mut step_inv_applied, mut step_inv_frames) = (0usize, 0usize);

    for k in 1..=opts.max_k {
        if opts.budget.out_of_time() {
            return KindResult::Timeout;
        }
        for item in ctx.poll() {
            match &*item {
                ExchangeItem::Lemma(l) => {
                    lemmas.push(l.bit);
                    ctx.note_imported(1);
                }
                ExchangeItem::Clause(c) => pending.push(c.clone()),
                ExchangeItem::Invariant(inv) => {
                    // PDR's converged frame clauses hold in every
                    // reachable assume-satisfying state — importable
                    // into both instances exactly like lemmas, just in
                    // clause form.
                    invs.push(inv.clone());
                    ctx.note_imported(1);
                }
            }
        }

        // ---- base: no violation in frames 0..k-1 -------------------------
        let f = k - 1;
        base.assert_assumes_through(f);
        pending.retain(|c| {
            if base.import_clause(c) {
                ctx.note_imported(1);
                false
            } else {
                true // not deep enough yet; retry at a later k
            }
        });
        assert_new_lemmas(&mut base, &lemmas, &mut base_applied, &mut base_frames);
        assert_new_invariants(
            &mut base,
            &invs,
            &mut base_inv_applied,
            &mut base_inv_frames,
        );
        let bad = base.bad_any_at(f);
        match base.solve_with(&[bad]) {
            SolveResult::Sat => {
                let name = base
                    .fired_bad_name(f)
                    .unwrap_or_else(|| "<unknown bad>".to_string());
                let trace = base.extract_trace(f + 1, name);
                return KindResult::Cex(Box::new(trace));
            }
            SolveResult::Unsat => {
                base.solver.add_clause(&[!bad]);
            }
            SolveResult::Canceled => return KindResult::Timeout,
        }

        // ---- step: k clean frames imply a clean frame k ------------------
        step.assert_assumes_through(k);
        assert_new_lemmas(&mut step, &lemmas, &mut step_applied, &mut step_frames);
        assert_new_invariants(
            &mut step,
            &invs,
            &mut step_inv_applied,
            &mut step_inv_frames,
        );
        // Bads known false at frames 0..k-1 (units accumulate across k).
        let prev_bad = step.bad_any_at(k - 1);
        step.solver.add_clause(&[!prev_bad]);
        if opts.unique_states {
            add_unique_state_constraints(ts, &mut step, k);
        }
        let bad_k = step.bad_any_at(k);
        match step.solve_with(&[bad_k]) {
            SolveResult::Unsat => return KindResult::Proof { k },
            SolveResult::Sat => { /* not inductive at this k; deepen */ }
            SolveResult::Canceled => return KindResult::Timeout,
        }
    }

    // Inconclusive — but while fresh lemmas keep arriving on the bus,
    // retry the deepest step query with them. `k = max_k` is the only
    // sound retry point: its accumulated hypothesis ("no bad at frames
    // 0..max_k-1") matches exactly what the base half verified. A poll
    // batch is capped, so keep draining while batches are non-empty — a
    // lemma can sit behind a backlog of (here useless) clause items.
    while ctx.is_attached() && !opts.budget.out_of_time() {
        let batch = ctx.poll();
        for item in &batch {
            match &**item {
                ExchangeItem::Lemma(l) => {
                    lemmas.push(l.bit);
                    ctx.note_imported(1);
                }
                ExchangeItem::Invariant(inv) => {
                    invs.push(inv.clone());
                    ctx.note_imported(1);
                }
                ExchangeItem::Clause(_) => {}
            }
        }
        if lemmas.len() > step_applied || invs.len() > step_inv_applied {
            assert_new_lemmas(&mut step, &lemmas, &mut step_applied, &mut step_frames);
            assert_new_invariants(
                &mut step,
                &invs,
                &mut step_inv_applied,
                &mut step_inv_frames,
            );
            let bad_k = step.bad_any_at(opts.max_k);
            match step.solve_with(&[bad_k]) {
                SolveResult::Unsat => return KindResult::Proof { k: opts.max_k },
                SolveResult::Sat => { /* still open; poll again */ }
                SolveResult::Canceled => return KindResult::Timeout,
            }
        } else if batch.is_empty() {
            break; // bus drained and nothing new to try
        }
    }
    KindResult::Unknown {
        max_k_tried: opts.max_k,
    }
}

/// Asserts per-frame units the instance has not seen yet: items past
/// `*applied` on every frame, and previously-applied items on frames
/// past `*frames_done` — so each (item, frame) pair costs one call
/// over the whole run instead of O(items × frames) per invocation.
/// Shared by the lemma and invariant-clause import paths so the subtle
/// high-water-mark accounting lives in one place.
fn assert_new_units<T>(
    u: &mut Unroller<'_>,
    items: &[T],
    applied: &mut usize,
    frames_done: &mut usize,
    assert_at: impl Fn(&mut Unroller<'_>, &T, usize),
) {
    let num_frames = u.num_frames();
    for item in &items[..*applied] {
        for t in *frames_done..num_frames {
            assert_at(u, item, t);
        }
    }
    for item in &items[*applied..] {
        for t in 0..num_frames {
            assert_at(u, item, t);
        }
    }
    *applied = items.len();
    *frames_done = num_frames;
}

/// [`assert_new_units`] over invariant lemma bits.
fn assert_new_lemmas(
    u: &mut Unroller<'_>,
    lemmas: &[Bit],
    applied: &mut usize,
    frames_done: &mut usize,
) {
    assert_new_units(u, lemmas, applied, frames_done, |u, &b, t| {
        u.assert_lemma_at(b, t)
    });
}

/// [`assert_new_units`] over PDR's exported invariant clauses.
fn assert_new_invariants(
    u: &mut Unroller<'_>,
    invs: &[SharedInvariant],
    applied: &mut usize,
    frames_done: &mut usize,
) {
    assert_new_units(u, invs, applied, frames_done, |u, inv, t| {
        u.assert_clause_at(&inv.lits, t)
    });
}

/// Adds `state(new_frame) != state(f)` for every earlier frame `f`.
fn add_unique_state_constraints(ts: &TransitionSystem, u: &mut Unroller<'_>, new_frame: usize) {
    for f in 0..new_frame {
        let mut diff_clause: Vec<Lit> = Vec::new();
        for &li in ts.active_latches() {
            let out = ts.aig().latches()[li as usize].output;
            let a = u.lit_of(out, f);
            let b = u.lit_of(out, new_frame);
            // x = a XOR b
            let x = u.solver.new_var().positive();
            u.solver.add_clause(&[!x, a, b]);
            u.solver.add_clause(&[!x, !a, !b]);
            u.solver.add_clause(&[x, !a, b]);
            u.solver.add_clause(&[x, a, !b]);
            diff_clause.push(x);
        }
        u.solver.add_clause(&diff_clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// A register that moves 0 -> 1 -> 2 and saturates; bad at 7.
    fn saturating() -> TransitionSystem {
        let mut d = Design::new("sat3");
        let r = d.reg("r", 3, Init::Zero);
        let at2 = d.eq_const(&r.q(), 2);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at2, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 7);
        d.assert_always("never7", bad.not());
        TransitionSystem::new(d.finish(), false)
    }

    #[test]
    fn saturating_counter_needs_simple_path() {
        // Plain k-induction fails (a state "6" is its own bogus predecessor
        // chain), but unique-states makes it complete.
        let ts = saturating();
        let plain = k_induction(
            &ts,
            KindOptions {
                max_k: 4,
                unique_states: false,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(plain, KindResult::Unknown { .. }), "{plain:?}");
        let unique = k_induction(
            &ts,
            KindOptions {
                max_k: 8,
                unique_states: true,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(unique, KindResult::Proof { .. }), "{unique:?}");
    }

    #[test]
    fn inductive_at_k1() {
        // Invariant r[2] == 0 is 1-inductive when the next state masks bit 2.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        let masked = csl_hdl::Word::from_bits(vec![inc.bit(0), inc.bit(1), csl_hdl::Bit::FALSE]);
        d.set_next(&r, masked);
        let bad = r.q().bit(2);
        d.assert_always("bit2_clear", bad.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match k_induction(&ts, KindOptions::default()) {
            KindResult::Proof { k } => assert_eq!(k, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn base_case_finds_real_cex() {
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 2);
        d.assert_always("no2", bad.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match k_induction(
            &ts,
            KindOptions {
                max_k: 6,
                ..Default::default()
            },
        ) {
            KindResult::Cex(t) => assert_eq!(t.depth(), 3),
            other => panic!("expected cex, got {other:?}"),
        }
    }

    /// Late lemmas may only retry the deepest step query: with a cex
    /// beyond `max_k`, the retry path must never turn the accumulated
    /// "no bad at shallow frames" units into a vacuous (false) proof.
    #[test]
    fn late_lemma_retry_never_fabricates_a_proof() {
        use crate::exchange::{Exchange, ExchangeConfig, SharedContext};

        // Counter whose bad state is at depth 12 — far beyond max_k=2,
        // so base is clean, step is not inductive, and any Proof result
        // would be unsound.
        let mut d = Design::new("deep");
        let r = d.reg("r", 4, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 12);
        d.assert_always("no12", bad.not());
        let ts = TransitionSystem::new(d.finish(), false);

        // Three trivially-true lemmas on the bus, but one poll returns
        // only one item: the main sweep consumes two (k=1, k=2) and the
        // third is left for the post-sweep retry path.
        let bus = Exchange::new(ExchangeConfig {
            enabled: true,
            max_imports_per_poll: 1,
            ..ExchangeConfig::default()
        });
        let publisher = SharedContext::attached(bus.clone(), Lane::Houdini, true, true);
        for i in 0..3 {
            publisher.publish_lemma(format!("trivial-{i}"), csl_hdl::Bit::TRUE);
        }
        let mut ctx = SharedContext::attached(bus, Lane::KInduction, true, true);
        let result = k_induction_with(
            &ts,
            KindOptions {
                max_k: 2,
                unique_states: false,
                budget: Budget::unlimited(),
            },
            &mut ctx,
        );
        assert!(
            matches!(result, KindResult::Unknown { .. }),
            "unsafe-beyond-max_k design must stay inconclusive, got {result:?}"
        );
        assert_eq!(ctx.imports(), 3, "all three lemmas must be consumed");
    }

    #[test]
    fn respects_budget() {
        let ts = saturating();
        let r = k_induction(
            &ts,
            KindOptions {
                max_k: 30,
                unique_states: true,
                budget: Budget {
                    max_conflicts: 1,
                    ..Budget::unlimited()
                },
            },
        );
        assert!(matches!(r, KindResult::Timeout | KindResult::Proof { .. }));
    }
}

//! k-induction.
//!
//! Proves a property by showing (base) no counterexample exists within `k`
//! steps of the initial states, and (step) any `k` consecutive violation-free
//! assume-satisfying states are followed by another violation-free state.
//! Both halves run in incremental SAT instances that persist across
//! increasing `k`. Optional unique-states ("simple path") constraints make
//! the method complete for finite systems at the cost of quadratic clauses.

use csl_sat::{Budget, Lit, SolveResult};

use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// Outcome of a k-induction run.
#[derive(Debug)]
pub enum KindResult {
    /// Property proved inductively at depth `k`.
    Proof { k: usize },
    /// A real counterexample surfaced in a base-case check.
    Cex(Box<Trace>),
    /// Not inductive for any tried `k <= max_k`.
    Unknown { max_k_tried: usize },
    /// Budget exhausted.
    Timeout,
}

/// Options for [`k_induction`].
#[derive(Clone, Debug)]
pub struct KindOptions {
    /// Largest induction depth to try.
    pub max_k: usize,
    /// Add pairwise state-distinctness constraints to the step case.
    pub unique_states: bool,
    pub budget: Budget,
}

impl Default for KindOptions {
    fn default() -> Self {
        KindOptions {
            max_k: 10,
            unique_states: false,
            budget: Budget::unlimited(),
        }
    }
}

/// Runs k-induction for `k = 1..=max_k`.
pub fn k_induction(ts: &TransitionSystem, opts: KindOptions) -> KindResult {
    let mut base = Unroller::new(ts, InitMode::Reset);
    base.set_budget(opts.budget.clone());
    let mut step = Unroller::new(ts, InitMode::Free);
    step.set_budget(opts.budget.clone());

    for k in 1..=opts.max_k {
        if opts.budget.out_of_time() {
            return KindResult::Timeout;
        }
        // ---- base: no violation in frames 0..k-1 -------------------------
        let f = k - 1;
        base.assert_assumes_through(f);
        let bad = base.bad_any_at(f);
        match base.solve_with(&[bad]) {
            SolveResult::Sat => {
                let name = base
                    .fired_bad_name(f)
                    .unwrap_or_else(|| "<unknown bad>".to_string());
                let trace = base.extract_trace(f + 1, name);
                return KindResult::Cex(Box::new(trace));
            }
            SolveResult::Unsat => {
                base.solver.add_clause(&[!bad]);
            }
            SolveResult::Canceled => return KindResult::Timeout,
        }

        // ---- step: k clean frames imply a clean frame k ------------------
        step.assert_assumes_through(k);
        // Bads known false at frames 0..k-1 (units accumulate across k).
        let prev_bad = step.bad_any_at(k - 1);
        step.solver.add_clause(&[!prev_bad]);
        if opts.unique_states {
            add_unique_state_constraints(ts, &mut step, k);
        }
        let bad_k = step.bad_any_at(k);
        match step.solve_with(&[bad_k]) {
            SolveResult::Unsat => return KindResult::Proof { k },
            SolveResult::Sat => { /* not inductive at this k; deepen */ }
            SolveResult::Canceled => return KindResult::Timeout,
        }
    }
    KindResult::Unknown {
        max_k_tried: opts.max_k,
    }
}

/// Adds `state(new_frame) != state(f)` for every earlier frame `f`.
fn add_unique_state_constraints(ts: &TransitionSystem, u: &mut Unroller<'_>, new_frame: usize) {
    for f in 0..new_frame {
        let mut diff_clause: Vec<Lit> = Vec::new();
        for &li in ts.active_latches() {
            let out = ts.aig().latches()[li as usize].output;
            let a = u.lit_of(out, f);
            let b = u.lit_of(out, new_frame);
            // x = a XOR b
            let x = u.solver.new_var().positive();
            u.solver.add_clause(&[!x, a, b]);
            u.solver.add_clause(&[!x, !a, !b]);
            u.solver.add_clause(&[x, !a, b]);
            u.solver.add_clause(&[x, a, !b]);
            diff_clause.push(x);
        }
        u.solver.add_clause(&diff_clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// A register that moves 0 -> 1 -> 2 and saturates; bad at 7.
    fn saturating() -> TransitionSystem {
        let mut d = Design::new("sat3");
        let r = d.reg("r", 3, Init::Zero);
        let at2 = d.eq_const(&r.q(), 2);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at2, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 7);
        d.assert_always("never7", bad.not());
        TransitionSystem::new(d.finish(), false)
    }

    #[test]
    fn saturating_counter_needs_simple_path() {
        // Plain k-induction fails (a state "6" is its own bogus predecessor
        // chain), but unique-states makes it complete.
        let ts = saturating();
        let plain = k_induction(
            &ts,
            KindOptions {
                max_k: 4,
                unique_states: false,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(plain, KindResult::Unknown { .. }), "{plain:?}");
        let unique = k_induction(
            &ts,
            KindOptions {
                max_k: 8,
                unique_states: true,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(unique, KindResult::Proof { .. }), "{unique:?}");
    }

    #[test]
    fn inductive_at_k1() {
        // Invariant r[2] == 0 is 1-inductive when the next state masks bit 2.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        let masked = csl_hdl::Word::from_bits(vec![inc.bit(0), inc.bit(1), csl_hdl::Bit::FALSE]);
        d.set_next(&r, masked);
        let bad = r.q().bit(2);
        d.assert_always("bit2_clear", bad.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match k_induction(&ts, KindOptions::default()) {
            KindResult::Proof { k } => assert_eq!(k, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn base_case_finds_real_cex() {
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 2);
        d.assert_always("no2", bad.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match k_induction(
            &ts,
            KindOptions {
                max_k: 6,
                ..Default::default()
            },
        ) {
            KindResult::Cex(t) => assert_eq!(t.depth(), 3),
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn respects_budget() {
        let ts = saturating();
        let r = k_induction(
            &ts,
            KindOptions {
                max_k: 30,
                unique_states: true,
                budget: Budget {
                    max_conflicts: 1,
                    ..Budget::unlimited()
                },
            },
        );
        assert!(matches!(r, KindResult::Timeout | KindResult::Proof { .. }));
    }
}

//! k-induction.
//!
//! Proves a property by showing (base) no counterexample exists within `k`
//! steps of the initial states, and (step) any `k` consecutive violation-free
//! assume-satisfying states are followed by another violation-free state.
//! Both halves run in incremental SAT instances that persist across
//! increasing `k`. Optional unique-states ("simple path") constraints make
//! the method complete for finite systems at the cost of quadratic clauses.

use std::sync::Arc;

use csl_hdl::Bit;
use csl_sat::{Budget, Lit, SolveResult, SolverStats};

use crate::exchange::{ExchangeItem, SharedClause, SharedContext, SharedInvariant};
use crate::lane::Lane;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// Outcome of a k-induction run.
#[derive(Debug)]
pub enum KindResult {
    /// Property proved inductively at depth `k`.
    Proof { k: usize },
    /// A real counterexample surfaced in a base-case check.
    Cex(Box<Trace>),
    /// Not inductive for any tried `k <= max_k`.
    Unknown { max_k_tried: usize },
    /// Budget exhausted.
    Timeout,
}

/// Options for [`k_induction`].
#[derive(Clone, Debug)]
pub struct KindOptions {
    /// Largest induction depth to try.
    pub max_k: usize,
    /// Add pairwise state-distinctness constraints to the step case.
    pub unique_states: bool,
    pub budget: Budget,
}

impl Default for KindOptions {
    fn default() -> Self {
        KindOptions {
            max_k: 10,
            unique_states: false,
            budget: Budget::unlimited(),
        }
    }
}

/// Runs k-induction for `k = 1..=max_k`.
pub fn k_induction(ts: &Arc<TransitionSystem>, opts: KindOptions) -> KindResult {
    k_induction_with(ts, opts, &mut SharedContext::disabled(Lane::KInduction))
}

/// [`k_induction`] attached to the exchange bus. Between SAT queries it
/// polls the bus and strengthens its *running* solvers in place:
///
/// * foreign invariant lemmas are asserted at every frame of both
///   instances — in the free-init step instance this is the classic
///   "strengthen the induction hypothesis with a known invariant" move,
///   previously only reachable by respawning on a lemma-conjoined
///   netlist;
/// * shared learnt clauses go into the reset-init *base* instance only
///   (they are consequences of the initialised unrolling), gated by
///   [`Unroller::can_import`] and kept pending until the base has
///   unrolled deep enough.
///
/// When new lemmas arrive after the sweep ended inconclusive, the
/// *deepest* step query is retried with them (the incremental solver
/// re-decides it cheaply) — late Houdini survivors can close an
/// induction that was not inductive without them. Only `k = max_k` may
/// be retried: the step instance has accumulated "no bad at frames
/// `0..max_k-1`" units, so any shallower re-query would be vacuously
/// UNSAT and report a false proof.
pub fn k_induction_with(
    ts: &Arc<TransitionSystem>,
    opts: KindOptions,
    ctx: &mut SharedContext,
) -> KindResult {
    let mut session = KindSession::new(ts, opts.unique_states);
    session.run_to(opts.max_k, opts.budget, ctx)
}

/// A persistent k-induction session: the reset-initialised *base* and
/// free-initialised *step* [`Unroller`] pair, parked and resumed **as a
/// unit** (the step instance's accumulated "no bad at shallow frames"
/// units are only meaningful together with the base instance that proved
/// them). The warm-start primitive for the induction lane: a re-query at
/// a deeper `max_k` continues the sweep from [`KindSession::next_k`]
/// instead of redoing every shallower base/step query.
///
/// # Soundness
/// The step instance accumulates `!bad(0..k-1)` hypothesis units as `k`
/// grows, so a *shallower* re-query cannot simply re-solve — it would be
/// vacuously UNSAT and fabricate a proof. [`KindSession::run_to`] guards
/// this: a `max_k` more than one below `next_k` is answered `Unknown`
/// without solving, which matches a fresh run exactly **provided the
/// session was only parked on an `Unknown` outcome` — an `Unknown` at
/// depth `d ≥ max_k` certifies base-clean and step-open for every
/// `k ≤ max_k`. The [`crate::warm::WarmPool`] enforces exactly that
/// parking discipline.
pub struct KindSession {
    base: Unroller,
    step: Unroller,
    lemmas: Vec<Bit>,
    invs: Vec<SharedInvariant>,
    pending: Vec<SharedClause>,
    // High-water marks so each (lemma/invariant, frame) unit is asserted
    // once per instance.
    base_applied: usize,
    base_frames: usize,
    step_applied: usize,
    step_frames: usize,
    base_inv_applied: usize,
    base_inv_frames: usize,
    step_inv_applied: usize,
    step_inv_frames: usize,
    /// The next induction depth the sweep will try (1 when fresh).
    next_k: usize,
    unique_states: bool,
}

impl KindSession {
    /// A fresh session over `ts`; `unique_states` is a structural choice
    /// of the step encoding and therefore fixed per session.
    pub fn new(ts: &Arc<TransitionSystem>, unique_states: bool) -> KindSession {
        KindSession {
            base: Unroller::new(ts, InitMode::Reset),
            step: Unroller::new(ts, InitMode::Free),
            lemmas: Vec::new(),
            invs: Vec::new(),
            pending: Vec::new(),
            base_applied: 0,
            base_frames: 0,
            step_applied: 0,
            step_frames: 0,
            base_inv_applied: 0,
            base_inv_frames: 0,
            step_inv_applied: 0,
            step_inv_frames: 0,
            next_k: 1,
            unique_states,
        }
    }

    /// The next induction depth a resumed sweep would try.
    pub fn next_k(&self) -> usize {
        self.next_k
    }

    /// Whether the session's step instance carries unique-state clauses.
    pub fn unique_states(&self) -> bool {
        self.unique_states
    }

    /// Number of foreign facts (exchange-bus lemmas and invariant
    /// clauses) baked into this session's solvers. A proof found with
    /// `imported_facts() > 0` leans on another lane's reasoning, so the
    /// k-induction frames alone are not a self-contained certificate.
    pub fn imported_facts(&self) -> usize {
        self.lemmas.len() + self.invs.len()
    }

    /// The transition system this session encodes.
    pub fn ts(&self) -> &Arc<TransitionSystem> {
        self.base.ts()
    }

    /// Cumulative statistics summed over the base and step solvers.
    pub fn solver_stats(&self) -> SolverStats {
        let b = self.base.solver.stats;
        let s = self.step.solver.stats;
        SolverStats {
            conflicts: b.conflicts + s.conflicts,
            decisions: b.decisions + s.decisions,
            propagations: b.propagations + s.propagations,
            restarts: b.restarts + s.restarts,
            learnt_literals: b.learnt_literals + s.learnt_literals,
            minimized_literals: b.minimized_literals + s.minimized_literals,
            reduced_clauses: b.reduced_clauses + s.reduced_clauses,
        }
    }

    /// Worst-solver garbage watermark, the pool's park-hygiene input.
    pub fn wasted_literals(&self) -> usize {
        self.base
            .solver
            .wasted_literals()
            .max(self.step.solver.wasted_literals())
    }

    /// Runs the sweep for `k = next_k..=max_k` under `budget`, then (when
    /// attached to a bus) the late-lemma retry at `max_k`. A `max_k`
    /// below `next_k - 1` returns `Unknown` without solving — see the
    /// type-level soundness note.
    pub fn run_to(&mut self, max_k: usize, budget: Budget, ctx: &mut SharedContext) -> KindResult {
        if max_k + 1 < self.next_k {
            // Strictly shallower than anything this session can still
            // query: the step instance's hypothesis units are too strong
            // for a sound re-solve, and the park discipline guarantees a
            // fresh run would answer Unknown here too.
            return KindResult::Unknown { max_k_tried: max_k };
        }
        self.base.set_budget(budget.clone());
        self.step.set_budget(budget.clone());
        let ts = Arc::clone(self.step.ts());

        while self.next_k <= max_k {
            let k = self.next_k;
            if budget.out_of_time() {
                return KindResult::Timeout;
            }
            for item in ctx.poll() {
                match &*item {
                    ExchangeItem::Lemma(l) => {
                        self.lemmas.push(l.bit);
                        ctx.note_imported(1);
                    }
                    ExchangeItem::Clause(c) => self.pending.push(c.clone()),
                    ExchangeItem::Invariant(inv) => {
                        // PDR's converged frame clauses hold in every
                        // reachable assume-satisfying state — importable
                        // into both instances exactly like lemmas, just in
                        // clause form.
                        self.invs.push(inv.clone());
                        ctx.note_imported(1);
                    }
                    // Obligations target PDR; frontier clauses are not
                    // inductive and must not enter a proof instance.
                    ExchangeItem::Obligation(_) | ExchangeItem::Frontier(_) => {}
                }
            }

            // ---- base: no violation in frames 0..k-1 -------------------------
            let f = k - 1;
            self.base.assert_assumes_through(f);
            let base = &mut self.base;
            self.pending.retain(|c| {
                if base.import_clause(c) {
                    ctx.note_imported(1);
                    false
                } else {
                    true // not deep enough yet; retry at a later k
                }
            });
            assert_new_lemmas(
                &mut self.base,
                &self.lemmas,
                &mut self.base_applied,
                &mut self.base_frames,
            );
            assert_new_invariants(
                &mut self.base,
                &self.invs,
                &mut self.base_inv_applied,
                &mut self.base_inv_frames,
            );
            let bad = self.base.bad_any_at(f);
            match self.base.solve_with(&[bad]) {
                SolveResult::Sat => {
                    let name = self
                        .base
                        .fired_bad_name(f)
                        .unwrap_or_else(|| "<unknown bad>".to_string());
                    let trace = self.base.extract_trace(f + 1, name);
                    return KindResult::Cex(Box::new(trace));
                }
                SolveResult::Unsat => {
                    self.base.solver.add_clause(&[!bad]);
                }
                SolveResult::Canceled => return KindResult::Timeout,
            }

            // ---- step: k clean frames imply a clean frame k ------------------
            self.step.assert_assumes_through(k);
            assert_new_lemmas(
                &mut self.step,
                &self.lemmas,
                &mut self.step_applied,
                &mut self.step_frames,
            );
            assert_new_invariants(
                &mut self.step,
                &self.invs,
                &mut self.step_inv_applied,
                &mut self.step_inv_frames,
            );
            // Bads known false at frames 0..k-1 (units accumulate across k).
            let prev_bad = self.step.bad_any_at(k - 1);
            self.step.solver.add_clause(&[!prev_bad]);
            if self.unique_states {
                add_unique_state_constraints(&ts, &mut self.step, k);
            }
            let bad_k = self.step.bad_any_at(k);
            // The depth is burned once the step query is posed: whatever
            // the verdict, the hypothesis units for k are in the solver.
            self.next_k = k + 1;
            match self.step.solve_with(&[bad_k]) {
                SolveResult::Unsat => return KindResult::Proof { k },
                SolveResult::Sat => { /* not inductive at this k; deepen */ }
                SolveResult::Canceled => return KindResult::Timeout,
            }
        }

        // Inconclusive — but while fresh lemmas keep arriving on the bus,
        // retry the deepest step query with them. `k = max_k` is the only
        // sound retry point: its accumulated hypothesis ("no bad at frames
        // 0..max_k-1") matches exactly what the base half verified. A poll
        // batch is capped, so keep draining while batches are non-empty — a
        // lemma can sit behind a backlog of (here useless) clause items.
        // On a warm session the guard above ensures `next_k == max_k + 1`
        // here, i.e. the step hypothesis really is `max_k`'s.
        while ctx.is_attached() && !budget.out_of_time() {
            let batch = ctx.poll();
            for item in &batch {
                match &**item {
                    ExchangeItem::Lemma(l) => {
                        self.lemmas.push(l.bit);
                        ctx.note_imported(1);
                    }
                    ExchangeItem::Invariant(inv) => {
                        self.invs.push(inv.clone());
                        ctx.note_imported(1);
                    }
                    ExchangeItem::Clause(_)
                    | ExchangeItem::Obligation(_)
                    | ExchangeItem::Frontier(_) => {}
                }
            }
            if self.lemmas.len() > self.step_applied || self.invs.len() > self.step_inv_applied {
                assert_new_lemmas(
                    &mut self.step,
                    &self.lemmas,
                    &mut self.step_applied,
                    &mut self.step_frames,
                );
                assert_new_invariants(
                    &mut self.step,
                    &self.invs,
                    &mut self.step_inv_applied,
                    &mut self.step_inv_frames,
                );
                let bad_k = self.step.bad_any_at(max_k);
                match self.step.solve_with(&[bad_k]) {
                    SolveResult::Unsat => return KindResult::Proof { k: max_k },
                    SolveResult::Sat => { /* still open; poll again */ }
                    SolveResult::Canceled => return KindResult::Timeout,
                }
            } else if batch.is_empty() {
                break; // bus drained and nothing new to try
            }
        }
        KindResult::Unknown { max_k_tried: max_k }
    }
}

/// Asserts per-frame units the instance has not seen yet: items past
/// `*applied` on every frame, and previously-applied items on frames
/// past `*frames_done` — so each (item, frame) pair costs one call
/// over the whole run instead of O(items × frames) per invocation.
/// Shared by the lemma and invariant-clause import paths so the subtle
/// high-water-mark accounting lives in one place.
fn assert_new_units<T>(
    u: &mut Unroller,
    items: &[T],
    applied: &mut usize,
    frames_done: &mut usize,
    assert_at: impl Fn(&mut Unroller, &T, usize),
) {
    let num_frames = u.num_frames();
    for item in &items[..*applied] {
        for t in *frames_done..num_frames {
            assert_at(u, item, t);
        }
    }
    for item in &items[*applied..] {
        for t in 0..num_frames {
            assert_at(u, item, t);
        }
    }
    *applied = items.len();
    *frames_done = num_frames;
}

/// [`assert_new_units`] over invariant lemma bits.
fn assert_new_lemmas(
    u: &mut Unroller,
    lemmas: &[Bit],
    applied: &mut usize,
    frames_done: &mut usize,
) {
    assert_new_units(u, lemmas, applied, frames_done, |u, &b, t| {
        u.assert_lemma_at(b, t)
    });
}

/// [`assert_new_units`] over PDR's exported invariant clauses.
fn assert_new_invariants(
    u: &mut Unroller,
    invs: &[SharedInvariant],
    applied: &mut usize,
    frames_done: &mut usize,
) {
    assert_new_units(u, invs, applied, frames_done, |u, inv, t| {
        u.assert_clause_at(&inv.lits, t)
    });
}

/// Adds `state(new_frame) != state(f)` for every earlier frame `f`.
fn add_unique_state_constraints(ts: &TransitionSystem, u: &mut Unroller, new_frame: usize) {
    for f in 0..new_frame {
        let mut diff_clause: Vec<Lit> = Vec::new();
        for &li in ts.active_latches() {
            let out = ts.aig().latches()[li as usize].output;
            let a = u.lit_of(out, f);
            let b = u.lit_of(out, new_frame);
            // x = a XOR b
            let x = u.solver.new_var().positive();
            u.solver.add_clause(&[!x, a, b]);
            u.solver.add_clause(&[!x, !a, !b]);
            u.solver.add_clause(&[x, !a, b]);
            u.solver.add_clause(&[x, a, !b]);
            diff_clause.push(x);
        }
        u.solver.add_clause(&diff_clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// A register that moves 0 -> 1 -> 2 and saturates; bad at 7.
    fn saturating() -> std::sync::Arc<TransitionSystem> {
        let mut d = Design::new("sat3");
        let r = d.reg("r", 3, Init::Zero);
        let at2 = d.eq_const(&r.q(), 2);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at2, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), 7);
        d.assert_always("never7", bad.not());
        TransitionSystem::shared(d.finish(), false)
    }

    #[test]
    fn saturating_counter_needs_simple_path() {
        // Plain k-induction fails (a state "6" is its own bogus predecessor
        // chain), but unique-states makes it complete.
        let ts = saturating();
        let plain = k_induction(
            &ts,
            KindOptions {
                max_k: 4,
                unique_states: false,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(plain, KindResult::Unknown { .. }), "{plain:?}");
        let unique = k_induction(
            &ts,
            KindOptions {
                max_k: 8,
                unique_states: true,
                budget: Budget::unlimited(),
            },
        );
        assert!(matches!(unique, KindResult::Proof { .. }), "{unique:?}");
    }

    #[test]
    fn inductive_at_k1() {
        // Invariant r[2] == 0 is 1-inductive when the next state masks bit 2.
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        let masked = csl_hdl::Word::from_bits(vec![inc.bit(0), inc.bit(1), csl_hdl::Bit::FALSE]);
        d.set_next(&r, masked);
        let bad = r.q().bit(2);
        d.assert_always("bit2_clear", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match k_induction(&ts, KindOptions::default()) {
            KindResult::Proof { k } => assert_eq!(k, 1),
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn base_case_finds_real_cex() {
        let mut d = Design::new("t");
        let r = d.reg("r", 3, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 2);
        d.assert_always("no2", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match k_induction(
            &ts,
            KindOptions {
                max_k: 6,
                ..Default::default()
            },
        ) {
            KindResult::Cex(t) => assert_eq!(t.depth(), 3),
            other => panic!("expected cex, got {other:?}"),
        }
    }

    /// Late lemmas may only retry the deepest step query: with a cex
    /// beyond `max_k`, the retry path must never turn the accumulated
    /// "no bad at shallow frames" units into a vacuous (false) proof.
    #[test]
    fn late_lemma_retry_never_fabricates_a_proof() {
        use crate::exchange::{Exchange, ExchangeConfig, SharedContext};

        // Counter whose bad state is at depth 12 — far beyond max_k=2,
        // so base is clean, step is not inductive, and any Proof result
        // would be unsound.
        let mut d = Design::new("deep");
        let r = d.reg("r", 4, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), 12);
        d.assert_always("no12", bad.not());
        let ts = TransitionSystem::shared(d.finish(), false);

        // Three trivially-true lemmas on the bus, but one poll returns
        // only one item: the main sweep consumes two (k=1, k=2) and the
        // third is left for the post-sweep retry path.
        let bus = Exchange::new(ExchangeConfig {
            enabled: true,
            max_imports_per_poll: 1,
            ..ExchangeConfig::default()
        });
        let publisher = SharedContext::attached(bus.clone(), Lane::Houdini, true, true);
        for i in 0..3 {
            publisher.publish_lemma(format!("trivial-{i}"), csl_hdl::Bit::TRUE);
        }
        let mut ctx = SharedContext::attached(bus, Lane::KInduction, true, true);
        let result = k_induction_with(
            &ts,
            KindOptions {
                max_k: 2,
                unique_states: false,
                budget: Budget::unlimited(),
            },
            &mut ctx,
        );
        assert!(
            matches!(result, KindResult::Unknown { .. }),
            "unsafe-beyond-max_k design must stay inconclusive, got {result:?}"
        );
        assert_eq!(ctx.imports(), 3, "all three lemmas must be consumed");
    }

    #[test]
    fn respects_budget() {
        let ts = saturating();
        let r = k_induction(
            &ts,
            KindOptions {
                max_k: 30,
                unique_states: true,
                budget: Budget {
                    max_conflicts: 1,
                    ..Budget::unlimited()
                },
            },
        );
        assert!(matches!(r, KindResult::Timeout | KindResult::Proof { .. }));
    }
}

//! Instance preparation: netlist reduction in front of the engines.
//!
//! [`prepare`] runs the `csl_hdl::xform` pass pipeline over a
//! [`SafetyCheck`] — cone-of-influence reduction, constant sweep with
//! cross-copy re-strash, dead-latch elimination, and probe-preserving
//! compaction — producing a [`PreparedInstance`]: the reduced task, a
//! [`Reconstruction`] that lifts counterexample traces back to the
//! original netlist's latch/input indices, and per-pass statistics.
//!
//! Houdini candidate invariants are threaded through the pipeline as
//! extra roots, so their bits stay meaningful (remapped) on the reduced
//! netlist and the candidate set never silently shrinks.
//!
//! [`check_safety`](crate::check_safety) prepares by default
//! ([`CheckOptions::prepare`](crate::CheckOptions)); `PrepareConfig::off()`
//! is the escape hatch that reproduces the raw-instance behaviour
//! exactly.

use csl_hdl::xform::{
    CoiPass, CompactPass, ConstSweepPass, DeadLatchPass, PassOpts, Pipeline, Reconstruction,
};
use csl_hdl::Aig;

use crate::cert::{CertKind, Certificate};
use crate::engine::{CheckReport, SafetyCheck, Verdict};
use crate::houdini::Candidate;

pub use csl_hdl::xform::PipelineStats as PrepareStats;

/// Which reduction passes run before the engines see an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrepareConfig {
    /// Master switch; `false` hands the engines the raw instance.
    pub enabled: bool,
    /// Cone-of-influence reduction w.r.t. assumes/bads (+probes).
    pub coi: bool,
    /// Stuck-at-reset constant sweep + cross-copy re-strash.
    pub const_sweep: bool,
    /// Removal of latches orphaned by earlier passes.
    pub dead_latches: bool,
    /// Probe-preserving node compaction.
    pub compact: bool,
}

impl Default for PrepareConfig {
    /// Preparation on, all passes enabled.
    fn default() -> PrepareConfig {
        PrepareConfig::on()
    }
}

impl PrepareConfig {
    /// The full standard pipeline.
    pub fn on() -> PrepareConfig {
        PrepareConfig {
            enabled: true,
            coi: true,
            const_sweep: true,
            dead_latches: true,
            compact: true,
        }
    }

    /// Preparation disabled (engines run on the raw instance).
    pub fn off() -> PrepareConfig {
        PrepareConfig {
            enabled: false,
            coi: false,
            const_sweep: false,
            dead_latches: false,
            compact: false,
        }
    }

    /// The `csl_hdl::xform` pipeline these knobs describe (empty when
    /// disabled).
    pub fn pipeline(&self, keep_probes: bool) -> Pipeline {
        let opts = PassOpts { keep_probes };
        let mut p = Pipeline::new(opts);
        if !self.enabled {
            return p;
        }
        if self.coi {
            p = p.with_pass(CoiPass);
        }
        if self.const_sweep {
            p = p.with_pass(ConstSweepPass);
        }
        if self.dead_latches {
            p = p.with_pass(DeadLatchPass);
        }
        if self.compact {
            p = p.with_pass(CompactPass);
        }
        p
    }
}

/// A verification instance after preparation: the reduced task the
/// engines run on, the back-map to the original netlist, and the
/// per-pass reduction statistics.
pub struct PreparedInstance {
    /// The reduced netlist plus candidates remapped into its vocabulary.
    pub task: SafetyCheck,
    /// Lifts reduced-netlist traces back to original latch/input
    /// indices (identity when preparation was off).
    pub reconstruction: Reconstruction,
    /// Per-pass node/latch reduction statistics (empty when preparation
    /// was off).
    pub stats: PrepareStats,
}

impl PreparedInstance {
    /// The reduced netlist.
    pub fn aig(&self) -> &Aig {
        &self.task.aig
    }

    /// Whether any pass actually ran.
    pub fn was_prepared(&self) -> bool {
        !self.stats.passes.is_empty()
    }

    /// Rewrites `report` into original-netlist vocabulary: attack traces
    /// and proof certificates are lifted through the reconstruction
    /// (certificates additionally pick up the constants the pipeline
    /// restored, via
    /// [`Reconstruction::restored_constants`]), and the preparation
    /// statistics (plus a summary note) are attached. `original` is the
    /// netlist `prepare` ran on. A certificate whose invariant mentions
    /// a latch with no original image cannot be lifted; it is dropped
    /// with a note rather than shipped wrong.
    pub fn finalize_report(&self, original: &Aig, mut report: CheckReport) -> CheckReport {
        if let Verdict::Attack(trace) = report.verdict {
            report.verdict = Verdict::Attack(Box::new(trace.lifted(&self.reconstruction)));
        }
        if let Some(cert) = report.certificate.take() {
            match self.lift_certificate(original, cert) {
                Some(lifted) => report.certificate = Some(lifted),
                None => report
                    .notes
                    .push("certificate dropped: invariant latch lost in preparation".into()),
            }
        }
        if self.was_prepared() {
            report.notes.insert(0, self.stats.summary());
            report.prepare = self.stats.passes.clone();
        }
        report
    }

    /// Re-expresses a certificate found on the prepared netlist in the
    /// original netlist's latch indices. Candidate (survivor) indices
    /// are stable — `prepare` rebuilds the candidate list index-aligned
    /// — so only blocked cubes need mapping; the constants the pipeline
    /// folded away join the certificate's `restored` set, restoring the
    /// part of the invariant the engines never saw.
    fn lift_certificate(&self, original: &Aig, mut cert: Certificate) -> Option<Certificate> {
        cert.restored = self.reconstruction.restored_constants(original);
        if let CertKind::Inductive { blocked } = &mut cert.kind {
            for cube in blocked.iter_mut() {
                for (latch, _) in cube.iter_mut() {
                    *latch = self.reconstruction.original_latch(*latch)?;
                }
            }
        }
        Some(cert)
    }
}

/// The standard prepare→solve→lift wrapper shared by `check_safety`
/// and the csl-core scheme runners: with preparation disabled, `solve`
/// runs directly on the borrowed task (no clone); otherwise the
/// engines see the reduced instance and the report comes back in
/// raw-netlist vocabulary with the preparation wall time *included* in
/// `CheckReport::elapsed` (the pipeline is linear in netlist size —
/// milliseconds against multi-second SAT budgets — and is therefore
/// not itself budget-capped or cancellable).
pub fn run_prepared(
    task: &SafetyCheck,
    cfg: &PrepareConfig,
    keep_probes: bool,
    solve: impl FnOnce(&SafetyCheck) -> CheckReport,
) -> CheckReport {
    if !cfg.enabled {
        return solve(task);
    }
    let start = std::time::Instant::now();
    let prepared = prepare(task, cfg, keep_probes);
    let mut report = prepared.finalize_report(&task.aig, solve(&prepared.task));
    report.elapsed = start.elapsed();
    report
}

/// Runs the configured reduction pipeline over `task`. Candidate bits
/// ride along as extra roots and come back remapped; with preparation
/// disabled the result is a clone of `task` with an identity
/// reconstruction.
pub fn prepare(task: &SafetyCheck, cfg: &PrepareConfig, keep_probes: bool) -> PreparedInstance {
    let pipeline = cfg.pipeline(keep_probes);
    if pipeline.is_empty() {
        return PreparedInstance {
            task: SafetyCheck {
                aig: task.aig.clone(),
                candidates: task.candidates.clone(),
            },
            reconstruction: Reconstruction::identity(&task.aig),
            stats: PrepareStats::default(),
        };
    }
    let roots: Vec<csl_hdl::Bit> = task.candidates.iter().map(|c| c.bit).collect();
    let prepared = pipeline.run(&task.aig, &roots);
    let candidates = task
        .candidates
        .iter()
        .zip(&prepared.root_images)
        .map(|(c, &bit)| Candidate {
            name: c.name.clone(),
            bit,
        })
        .collect();
    PreparedInstance {
        task: SafetyCheck {
            aig: prepared.aig,
            candidates,
        },
        reconstruction: prepared.reconstruction,
        stats: prepared.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    fn task_with_dead_state() -> SafetyCheck {
        let mut d = Design::new("t");
        let live = d.reg("live", 3, Init::Zero);
        let nxt = d.add_const(&live.q(), 1);
        d.set_next(&live, nxt);
        let dead = d.reg("dead", 6, Init::Zero);
        let dn = d.add_const(&dead.q(), 2);
        d.set_next(&dead, dn);
        let hit = d.eq_const(&live.q(), 5);
        d.assert_always("no5", hit.not());
        SafetyCheck {
            aig: d.finish(),
            candidates: vec![Candidate {
                name: "not5".into(),
                bit: hit.not(),
            }],
        }
    }

    #[test]
    fn off_is_identity() {
        let task = task_with_dead_state();
        let p = prepare(&task, &PrepareConfig::off(), true);
        assert!(!p.was_prepared());
        assert_eq!(p.aig().num_nodes(), task.aig.num_nodes());
        assert_eq!(p.task.candidates[0].bit, task.candidates[0].bit);
        assert_eq!(p.reconstruction.original_latch(3), Some(3));
    }

    #[test]
    fn on_reduces_and_remaps_candidates() {
        let task = task_with_dead_state();
        let p = prepare(&task, &PrepareConfig::on(), false);
        assert!(p.was_prepared());
        assert!(p.aig().num_latches() < task.aig.num_latches());
        assert_eq!(p.task.candidates.len(), 1);
        // The candidate's bit now lives in the reduced vocabulary.
        assert!(!p.task.candidates[0].bit.is_const());
        assert!(p.stats.latches_removed() >= 6);
        assert!(p.aig().validate().is_ok());
    }
}

//! Warm-start session pool.
//!
//! Incremental SAT amortises encoding and learning work across queries,
//! but only while the solver instance stays alive. Engine calls used to
//! rebuild their [`crate::Unroller`]s from scratch, so every depth
//! escalation, budget-escalated re-run and repeated query on the same
//! netlist paid the full unrolling and re-learning cost again. This
//! module keeps finished-but-undecided sessions around:
//!
//! * [`crate::BmcSession`] — the unrolled reset-init instance with its
//!   `clean_to` high-water mark; a deeper re-query continues at
//!   `clean_to + 1` instead of frame 0.
//! * [`crate::KindSession`] — the base/step instance pair, parked **as a
//!   unit** at its `next_k`.
//!
//! The pool is keyed by [`crate::TransitionSystem::fingerprint`] plus a
//! [`WarmScope`], so a session is only ever resumed against a
//! structurally identical netlist with the same engine configuration.
//! Everything a parked session retains — learnt clauses, `!bad(k)`
//! units, imported bus lemmas — is a consequence of that transition
//! system, so re-queries are verdict-identical to a cold run (the
//! property test `warm_soundness.rs` checks this on random netlists).
//!
//! # Parking discipline
//! Callers may only park sessions whose last outcome was *undecided*
//! (BMC `Clean`/`Timeout`, k-induction `Unknown`): the k-induction
//! shallow-query guard ([`crate::KindSession::run_to`]) is only sound
//! under that discipline, and decisive sessions have nothing left to
//! amortise. Sessions dragging too much clause-arena garbage are
//! dropped instead of parked ([`MAX_WASTED_LITERALS`]).

use std::sync::{Mutex, OnceLock};

use csl_sat::SolverStats;

use crate::bmc::BmcSession;
use crate::kind::KindSession;
use crate::lane::Lane;

/// What kind of engine a parked session belongs to. Part of the pool
/// key: a BMC unrolling is useless to (and unsound for) the induction
/// lane, and a unique-states step instance carries structural clauses a
/// plain k-induction run must not inherit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum WarmScope {
    /// Reset-initialised BMC unrolling.
    Bmc,
    /// Base/step k-induction pair; `unique_states` is part of the step
    /// instance's encoding and therefore of the key.
    Kind { unique_states: bool },
}

/// A parked session of either scope.
pub enum WarmSession {
    Bmc(Box<BmcSession>),
    Kind(Box<KindSession>),
}

impl WarmSession {
    fn scope(&self) -> WarmScope {
        match self {
            WarmSession::Bmc(_) => WarmScope::Bmc,
            WarmSession::Kind(s) => WarmScope::Kind {
                unique_states: s.unique_states(),
            },
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            WarmSession::Bmc(s) => s.ts().fingerprint(),
            WarmSession::Kind(s) => s.ts().fingerprint(),
        }
    }

    fn wasted_literals(&self) -> usize {
        match self {
            WarmSession::Bmc(s) => s.wasted_literals(),
            WarmSession::Kind(s) => s.wasted_literals(),
        }
    }
}

/// Sessions dragging more freed-but-uncompacted literal slots than this
/// are dropped at park time: rebuilding from scratch is cheaper than
/// resuming a garbage-heavy instance.
pub const MAX_WASTED_LITERALS: usize = 1 << 20;

/// Parked sessions the pool keeps before evicting the least recently
/// parked one. Small on purpose: each entry owns a full SAT instance.
pub const POOL_CAPACITY: usize = 8;

struct Entry {
    fingerprint: u64,
    scope: WarmScope,
    tick: u64,
    session: WarmSession,
}

#[derive(Default)]
struct PoolInner {
    entries: Vec<Entry>,
    tick: u64,
}

/// A bounded LRU pool of parked solver sessions. Checkout *removes* the
/// entry — a session has single ownership, so two concurrent queries on
/// the same netlist race for the warm copy and the loser builds cold.
#[derive(Default)]
pub struct WarmPool {
    inner: Mutex<PoolInner>,
}

impl WarmPool {
    /// An empty pool (tests and benchmarks; engines use [`WarmPool::global`]).
    pub fn new() -> WarmPool {
        WarmPool::default()
    }

    /// The process-wide pool behind [`crate::CheckOptions::warm_start`].
    pub fn global() -> &'static WarmPool {
        static POOL: OnceLock<WarmPool> = OnceLock::new();
        POOL.get_or_init(WarmPool::new)
    }

    /// Removes and returns the parked session for `(fingerprint, scope)`,
    /// if any.
    pub fn checkout(&self, fingerprint: u64, scope: WarmScope) -> Option<WarmSession> {
        let mut inner = self.inner.lock().unwrap();
        let pos = inner
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint && e.scope == scope)?;
        Some(inner.entries.swap_remove(pos).session)
    }

    /// [`WarmPool::checkout`] for the BMC scope.
    pub fn checkout_bmc(&self, fingerprint: u64) -> Option<BmcSession> {
        match self.checkout(fingerprint, WarmScope::Bmc) {
            Some(WarmSession::Bmc(s)) => Some(*s),
            _ => None,
        }
    }

    /// [`WarmPool::checkout`] for the k-induction scope.
    pub fn checkout_kind(&self, fingerprint: u64, unique_states: bool) -> Option<KindSession> {
        match self.checkout(fingerprint, WarmScope::Kind { unique_states }) {
            Some(WarmSession::Kind(s)) => Some(*s),
            _ => None,
        }
    }

    /// Parks `session` for later checkout, keyed by its own transition
    /// system's fingerprint. Displaces an already-parked session with
    /// the same key (the newer instance has strictly more learning) and
    /// evicts the least recently parked entry when full. Garbage-heavy
    /// sessions are silently dropped — see [`MAX_WASTED_LITERALS`].
    pub fn park(&self, session: WarmSession) {
        if session.wasted_literals() > MAX_WASTED_LITERALS {
            return;
        }
        let fingerprint = session.fingerprint();
        let scope = session.scope();
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(pos) = inner
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint && e.scope == scope)
        {
            inner.entries.swap_remove(pos);
        }
        if inner.entries.len() >= POOL_CAPACITY {
            let oldest = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.tick)
                .map(|(i, _)| i)
                .expect("non-empty pool has an oldest entry");
            inner.entries.swap_remove(oldest);
        }
        inner.entries.push(Entry {
            fingerprint,
            scope,
            tick,
            session,
        });
    }

    /// Parks a BMC session (see [`WarmPool::park`]). The caller must
    /// have called [`BmcSession::prepare_for_park`] semantics — this
    /// does it here so no caller can forget to detach the export hook.
    pub fn park_bmc(&self, mut session: BmcSession) {
        session.prepare_for_park();
        self.park(WarmSession::Bmc(Box::new(session)));
    }

    /// Parks a k-induction session (see [`WarmPool::park`]). Only sound
    /// for sessions whose last outcome was `Unknown` — see the module
    /// docs on parking discipline.
    pub fn park_kind(&self, session: KindSession) {
        self.park(WarmSession::Kind(Box::new(session)));
    }

    /// Number of parked sessions (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every parked session. Benchmarks use this to separate
    /// warm and cold measurement phases sharing the global pool.
    pub fn clear(&self) {
        self.inner.lock().unwrap().entries.clear();
    }
}

/// Per-lane solver activity for one engine run, reported through
/// [`crate::CheckReport::solver`]. Counters are *deltas* over the run
/// (a warm session's cumulative totals minus its checkout snapshot), so
/// a warm run's numbers are comparable to a cold run's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneSolverStats {
    pub lane: Lane,
    pub propagations: u64,
    pub conflicts: u64,
    pub decisions: u64,
    pub restarts: u64,
    pub reduced_clauses: u64,
    /// Queries served by a checked-out warm session.
    pub warm_hits: u64,
    /// Queries that wanted a warm session and built cold instead.
    pub warm_misses: u64,
}

impl LaneSolverStats {
    /// Stats for a run that started from snapshot `start` and ended at
    /// `end` (cumulative counters never reset, so the difference is the
    /// run's own activity).
    pub fn delta(lane: Lane, start: SolverStats, end: SolverStats) -> LaneSolverStats {
        LaneSolverStats {
            lane,
            propagations: end.propagations - start.propagations,
            conflicts: end.conflicts - start.conflicts,
            decisions: end.decisions - start.decisions,
            restarts: end.restarts - start.restarts,
            reduced_clauses: end.reduced_clauses - start.reduced_clauses,
            warm_hits: 0,
            warm_misses: 0,
        }
    }

    /// Fresh stats for a cold run of `lane` ending at `end`.
    pub fn cold(lane: Lane, end: SolverStats) -> LaneSolverStats {
        LaneSolverStats::delta(lane, SolverStats::default(), end)
    }

    /// Folds another lane-run's counters into this one (sequential mode
    /// runs several engines under one report entry per lane).
    pub fn absorb(&mut self, other: &LaneSolverStats) {
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.restarts += other.restarts;
        self.reduced_clauses += other.reduced_clauses;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::TransitionSystem;
    use csl_hdl::{Design, Init};

    fn counter(name: &str, width: usize) -> std::sync::Arc<TransitionSystem> {
        let mut d = Design::new(name);
        let r = d.reg("r", width, Init::Zero);
        let inc = d.add_const(&r.q(), 1);
        d.set_next(&r, inc);
        let bad = d.eq_const(&r.q(), (1u64 << width) - 1);
        d.assert_always("sat", bad.not());
        TransitionSystem::shared(d.finish(), false)
    }

    #[test]
    fn checkout_removes_and_misses_on_wrong_key() {
        let pool = WarmPool::new();
        let ts = counter("t", 4);
        pool.park_bmc(BmcSession::new(&ts));
        assert_eq!(pool.len(), 1);
        assert!(pool.checkout_bmc(ts.fingerprint() ^ 1).is_none());
        assert!(pool.checkout_kind(ts.fingerprint(), false).is_none());
        assert!(pool.checkout_bmc(ts.fingerprint()).is_some());
        // Single ownership: the entry is gone now.
        assert!(pool.checkout_bmc(ts.fingerprint()).is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn kind_key_includes_unique_states() {
        let pool = WarmPool::new();
        let ts = counter("t", 4);
        pool.park_kind(KindSession::new(&ts, true));
        assert!(pool.checkout_kind(ts.fingerprint(), false).is_none());
        let s = pool.checkout_kind(ts.fingerprint(), true).unwrap();
        assert!(s.unique_states());
    }

    #[test]
    fn same_key_park_displaces() {
        let pool = WarmPool::new();
        let ts = counter("t", 4);
        pool.park_bmc(BmcSession::new(&ts));
        pool.park_bmc(BmcSession::new(&ts));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let pool = WarmPool::new();
        let first = counter("t0", 2);
        pool.park_bmc(BmcSession::new(&first));
        for w in 0..POOL_CAPACITY {
            // Different widths -> different fingerprints.
            pool.park_bmc(BmcSession::new(&counter("t", w + 3)));
        }
        assert_eq!(pool.len(), POOL_CAPACITY);
        // The first (least recently parked) session was evicted.
        assert!(pool.checkout_bmc(first.fingerprint()).is_none());
    }

    #[test]
    fn delta_subtracts_snapshot() {
        let start = SolverStats {
            conflicts: 5,
            propagations: 100,
            ..SolverStats::default()
        };
        let mut end = start;
        end.conflicts = 12;
        end.propagations = 400;
        end.restarts = 2;
        let d = LaneSolverStats::delta(Lane::Bmc, start, end);
        assert_eq!(d.conflicts, 7);
        assert_eq!(d.propagations, 300);
        assert_eq!(d.restarts, 2);
        assert_eq!(d.warm_hits, 0);
    }
}

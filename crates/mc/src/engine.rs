//! Verification engine orchestration.
//!
//! [`check_safety`] is the "push-button model checker" entry point the
//! schemes in `csl-core` call: it mirrors the paper's JasperGold workflow
//! (§6) of running attack-finding (their `Ht` engine → our BMC) and proof
//! engines (their `Mp`/`AM` → our Houdini / k-induction / PDR) against one
//! instrumented design, with a wall-clock budget standing in for the
//! 7-day timeout, and reports one of the paper's three outcomes: a
//! counterexample (attack), an unbounded proof, or a timeout.
//!
//! Two execution modes share identical verdict semantics
//! ([`ExecMode`]): the classic sequential pipeline (BMC → Houdini →
//! k-induction → PDR, each inheriting the remaining wall clock) and the
//! portfolio mode of [`crate::portfolio`], which races the same engines
//! on threads and cancels the losers as soon as one lane is decisive.

use std::time::{Duration, Instant};

use csl_hdl::xform::PassStats;
use csl_hdl::Aig;
use csl_sat::Budget;

use crate::bmc::{BmcResult, BmcSession};
use crate::cert::{CertKind, Certificate};
use crate::exchange::{ExchangeConfig, ExchangeStats, SharedContext};
use crate::houdini::{houdini, Candidate, HoudiniResult};
use crate::kind::{KindResult, KindSession};
use crate::lane::{Lane, LanePlan};
use crate::pdr::{pdr_with_stats, PdrOptions, PdrResult};
use crate::portfolio::{
    race, BmcBackend, EngineOutcome, HoudiniBackend, KindBackend, LaneFactory, LaneSpec, PdrBackend,
};
use crate::prepare::{run_prepared, PrepareConfig};
use crate::sim::Sim;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::warm::{LaneSolverStats, WarmPool};

/// Which engine completed an unbounded proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofEngine {
    /// Houdini-filtered relational invariants alone imply safety
    /// (LEAVE's success mode).
    Houdini { invariants: usize },
    /// k-induction (optionally strengthened by Houdini lemmas).
    KInduction { k: usize },
    /// IC3/PDR (optionally strengthened by Houdini lemmas).
    Pdr {
        frames: usize,
        clauses: usize,
        /// Frame at which propagation found the inductive fixpoint
        /// (≤ `frames`; proof strength at a glance).
        fixpoint_level: usize,
    },
}

/// Why an engine (or a whole check) finished without a verdict. The
/// typed variants replace the free-form strings the engines used to
/// report, so reports can be filtered and diffed by reason kind; the
/// `Display` impl reproduces the human-readable text for notes and
/// tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InconclusiveReason {
    /// BMC exhausted its depth bound without a counterexample.
    BoundedClean { depth: usize },
    /// k-induction never closed within its `k` bound.
    InductionGap { max_k: usize },
    /// PDR hit its frame cap without converging.
    FrameCap { frames: usize },
    /// A counterexample failed concrete simulation replay.
    ReplayFailed { engine: String },
    /// Houdini left no surviving invariants to work with.
    NoInvariants,
    /// The surviving invariants do not exclude the bad states (LEAVE's
    /// "false counterexamples" outcome).
    InvariantsInsufficient { survivors: usize },
    /// Attack-only mode: the bounded search came back clean.
    NoAttackWithinDepth { depth: usize },
    /// A fuzzing lane ran out of trials without observing a leak — *not*
    /// a proof (fuzzing offers no coverage guarantee).
    FuzzExhausted { trials: usize },
    /// The isolated worker process solving the cell died (solver crash,
    /// OOM kill, deliberate abort) before producing a verdict; `detail`
    /// records the exit code or signal. Emitted by the `csl-serve`
    /// campaign daemon so a crashed cell stays visible in the report
    /// instead of taking the campaign down with it.
    WorkerCrashed { detail: String },
    /// Every engine finished without a verdict.
    AllInconclusive,
    /// Anything else (joined engine notes, external causes).
    Other(String),
}

impl std::fmt::Display for InconclusiveReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InconclusiveReason::BoundedClean { depth } => {
                write!(f, "bmc clean to depth {depth}")
            }
            InconclusiveReason::InductionGap { max_k } => {
                write!(f, "k-induction inconclusive to k={max_k}")
            }
            InconclusiveReason::FrameCap { frames } => write!(f, "pdr frame limit at {frames}"),
            InconclusiveReason::ReplayFailed { engine } => {
                write!(f, "{engine}: counterexample failed simulation replay")
            }
            InconclusiveReason::NoInvariants => {
                write!(f, "houdini: no surviving invariants to strengthen with")
            }
            InconclusiveReason::InvariantsInsufficient { survivors } => write!(
                f,
                "invariant search exhausted ({survivors} survivors insufficient): \
                 induction yields false counterexamples"
            ),
            InconclusiveReason::NoAttackWithinDepth { depth } => {
                write!(f, "no attack within bmc depth {depth}")
            }
            InconclusiveReason::FuzzExhausted { trials } => {
                write!(f, "fuzz exhausted {trials} trials without a leak")
            }
            InconclusiveReason::WorkerCrashed { detail } => {
                write!(f, "worker crashed ({detail})")
            }
            InconclusiveReason::AllInconclusive => write!(f, "all engines inconclusive"),
            InconclusiveReason::Other(text) => f.write_str(text),
        }
    }
}

/// Statistics from a fuzzing lane's campaign, surfaced in
/// [`CheckReport::fuzz`] (and, one layer up, in the session API's report
/// JSON as the lenient `fuzz` block). Recorded on every outcome — a leak
/// *and* an exhausted campaign both carry trial counts, simulated
/// cycles and wall time, so throughput (trials/second) is computable
/// without re-running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzStats {
    /// Program/secret pairs simulated (including the leaking one).
    pub trials: usize,
    /// Of `trials`, how many were corpus-sourced mutants (coverage-guided
    /// mode; zero for the blind fuzzer).
    pub corpus_trials: usize,
    /// Of `trials`, how many were drawn fresh from the random generator.
    pub random_trials: usize,
    /// Total trial-cycles simulated: each simulated cycle of each lane
    /// counts once, so scalar and batched runs are directly comparable.
    pub sim_cycles: u64,
    /// Wall time the fuzzing lane spent.
    pub wall: Duration,
    /// Cycle at which the leakage assertion fired, when a leak was found.
    pub leak_cycle: Option<usize>,
    /// RNG seed that drove the stimulus stream (replays the campaign).
    pub seed: u64,
    /// Bit-parallel lanes per simulation pass (1 = scalar).
    pub lanes: usize,
}

impl FuzzStats {
    /// Campaign throughput in trials per wall-clock second. A campaign
    /// whose wall clock never ticked (zero-trial runs, sub-resolution
    /// timers) reports 0.0 rather than an absurd extrapolation.
    pub fn trials_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.trials as f64 / secs
    }
}

/// Coverage accounting from a coverage-guided fuzzing lane (see the
/// `csl_cover` crate), surfaced in [`CheckReport::coverage`] and — one
/// layer up — as the lenient `coverage` block of the session report
/// JSON. All plain counters, so the block is cheap to persist and diff.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Distinct latches observed toggling at least once.
    pub latches_toggled: usize,
    /// Latches the coverage map tracks (the simulated netlist's total).
    pub latches_total: usize,
    /// Distinct per-trial coverage signatures (stable-hash dedup keys).
    pub signatures: usize,
    /// Trials that reached coverage no earlier trial had reached.
    pub new_coverage_trials: usize,
    /// Corpus entries at the end of the campaign.
    pub corpus_size: usize,
    /// Fuzz-reached states exported to PDR as proof obligations.
    pub obligations_exported: usize,
    /// Stimuli skipped by the PDR-frontier rejection filter.
    pub stimuli_rejected: usize,
}

/// The paper's verification outcomes (§5.3 "Model Checking with Contract
/// Shadow Logic" lists exactly these three, plus LEAVE's UNKNOWN).
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// A counterexample: a program + secret pair that satisfies the contract
    /// constraint yet produces distinguishable microarchitectural traces.
    Attack(Box<Trace>),
    /// Unbounded proof of the contract property.
    Proof(ProofEngine),
    /// Engines exhausted without a verdict inside the budget.
    Timeout,
    /// Inconclusive for a structural reason (e.g. LEAVE's invariant set
    /// collapsed); `reason` is typed and renders to the human-readable
    /// text via `Display`.
    Unknown { reason: InconclusiveReason },
}

impl Verdict {
    pub fn is_attack(&self) -> bool {
        matches!(self, Verdict::Attack(_))
    }

    pub fn is_proof(&self) -> bool {
        matches!(self, Verdict::Proof(_))
    }

    /// Short cell text for the result tables ("CEX", "PROOF", "T/O", "UNK").
    pub fn cell(&self) -> &'static str {
        match self {
            Verdict::Attack(_) => "CEX",
            Verdict::Proof(_) => "PROOF",
            Verdict::Timeout => "T/O",
            Verdict::Unknown { .. } => "UNK",
        }
    }
}

/// How [`check_safety`] schedules its engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One engine at a time: BMC, then Houdini, then k-induction, then
    /// PDR, each inheriting whatever wall clock remains.
    #[default]
    Sequential,
    /// All engines race on threads; the first decisive lane (attack or
    /// proof) cancels the rest through the shared stop flag.
    Portfolio,
}

/// Options for [`check_safety`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Total wall-clock budget (the "7 days" stand-in).
    pub total_budget: Duration,
    /// Maximum BMC depth for the attack-finding phase.
    pub bmc_depth: usize,
    /// Skip the proof phase entirely (pure attack hunting).
    pub attack_only: bool,
    /// Maximum k for k-induction (0 disables the engine).
    pub kind_max_k: usize,
    /// Run PDR if earlier engines are inconclusive.
    pub use_pdr: bool,
    /// PDR frame cap.
    pub pdr_max_frames: usize,
    /// Keep probe logic alive (larger encodings, readable traces).
    pub keep_probes: bool,
    /// Sequential pipeline or thread-racing portfolio.
    pub mode: ExecMode,
    /// Per-lane budget shaping (wall caps, BMC depth schedule, exchange
    /// opt-outs). The empty default leaves every lane on the shared
    /// clock.
    pub lanes: LanePlan,
    /// The cross-lane clause/lemma exchange bus (portfolio mode only;
    /// disabled by default — the isolated-lane race of v1).
    pub exchange: ExchangeConfig,
    /// Instance preparation: the netlist reduction pipeline every engine
    /// runs behind (default on; `PrepareConfig::off()` hands the engines
    /// the raw instance). Attack traces are lifted back to the raw
    /// netlist's vocabulary before they leave [`check_safety`].
    pub prepare: PrepareConfig,
    /// Reuse solver sessions across engine calls: BMC unrollings and
    /// k-induction base/step pairs that end undecided are parked in the
    /// process-wide [`WarmPool`] and resumed by the next check on a
    /// structurally identical netlist, so depth/budget escalations and
    /// repeated queries skip the re-encode/re-learn cost. Verdicts are
    /// unaffected (see `crate::warm` for the soundness argument); the
    /// per-lane hit/miss accounting lands in [`CheckReport::solver`].
    /// Off by default.
    pub warm_start: bool,
    /// Additional attack-finding lanes beyond the built-in engines —
    /// the seam through which the differential-fuzzing backend (and any
    /// other caller-supplied [`crate::Backend`]) joins the check. In
    /// portfolio mode each factory's backend races the solver lanes
    /// (a concrete leak is decisive and cancels them); in sequential
    /// mode the extra lanes run first, as phase 0 of the pipeline,
    /// under their [`LanePlan`] budgets. Empty by default.
    pub extra_lanes: Vec<LaneFactory>,
    /// Attach a checkable [`Certificate`] to every proof verdict (on by
    /// default; capturing the material is free — no extra SAT calls).
    /// Proofs that lean on facts imported over the exchange bus are not
    /// self-contained and ship without a certificate regardless.
    pub certify: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            total_budget: Duration::from_secs(60),
            bmc_depth: 20,
            attack_only: false,
            kind_max_k: 6,
            use_pdr: true,
            pdr_max_frames: 40,
            keep_probes: true,
            mode: ExecMode::Sequential,
            lanes: LanePlan::default(),
            exchange: ExchangeConfig::default(),
            prepare: PrepareConfig::default(),
            warm_start: false,
            extra_lanes: Vec::new(),
            certify: true,
        }
    }
}

impl CheckOptions {
    /// The same options with portfolio scheduling enabled.
    pub fn portfolio(mut self) -> CheckOptions {
        self.mode = ExecMode::Portfolio;
        self
    }

    /// The same options with the exchange bus configured (builder style).
    pub fn with_exchange(mut self, exchange: ExchangeConfig) -> CheckOptions {
        self.exchange = exchange;
        self
    }

    /// The same options with the preparation pipeline configured
    /// (builder style).
    pub fn with_prepare(mut self, prepare: PrepareConfig) -> CheckOptions {
        self.prepare = prepare;
        self
    }

    /// The same options with warm-start session reuse enabled
    /// (builder style) — see [`CheckOptions::warm_start`].
    pub fn warm(mut self, warm_start: bool) -> CheckOptions {
        self.warm_start = warm_start;
        self
    }

    /// The same options with one more extra attack-finding lane
    /// (builder style) — see [`CheckOptions::extra_lanes`].
    pub fn with_extra_lane(mut self, lane: LaneFactory) -> CheckOptions {
        self.extra_lanes.push(lane);
        self
    }

    /// The same options with certificate emission toggled
    /// (builder style) — see [`CheckOptions::certify`].
    pub fn certify(mut self, certify: bool) -> CheckOptions {
        self.certify = certify;
        self
    }
}

/// A verification task: an instrumented netlist plus optional relational
/// invariant candidates (used as Houdini lemmas and for the LEAVE scheme).
pub struct SafetyCheck {
    pub aig: Aig,
    pub candidates: Vec<Candidate>,
}

/// The result of a [`check_safety`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckReport {
    pub verdict: Verdict,
    pub elapsed: Duration,
    /// Engine-by-engine notes (sizes, intermediate outcomes).
    pub notes: Vec<String>,
    /// Per-lane exchange-bus traffic (empty when the bus was disabled or
    /// the check ran sequentially).
    pub exchange: Vec<ExchangeStats>,
    /// Per-pass node/latch reduction statistics from instance
    /// preparation (empty when preparation was off).
    pub prepare: Vec<PassStats>,
    /// Fuzzing-lane campaign statistics (`None` when no fuzzing lane
    /// ran — the default).
    pub fuzz: Option<FuzzStats>,
    /// Coverage accounting from a coverage-guided fuzzing lane (`None`
    /// unless a fuzz lane ran with coverage tracking on).
    pub coverage: Option<CoverageStats>,
    /// Per-lane solver activity and warm-start accounting, in pipeline
    /// order (empty when no SAT lane reported — e.g. a fuzz-only check).
    pub solver: Vec<LaneSolverStats>,
    /// Checkable proof artifact for `Verdict::Proof` results, in the
    /// vocabulary of the netlist this report describes (after
    /// preparation lifting: the *raw* netlist). `None` for non-proof
    /// verdicts, when [`CheckOptions::certify`] was off, when the proof
    /// leaned on exchange-bus imports, or when lifting through the
    /// preparation pipeline failed (noted in `notes`).
    pub certificate: Option<Certificate>,
}

/// Folds a lane-run's stats into `acc`: merged into an existing entry
/// for the same lane (sequential mode can run one lane several times —
/// e.g. BMC phase 1 plus the PDR counterexample reconstruction), pushed
/// otherwise. Keeps `acc` in stable pipeline order for byte-stable
/// reports.
fn record_solver_stats(acc: &mut Vec<LaneSolverStats>, stats: LaneSolverStats) {
    match acc.iter_mut().find(|s| s.lane == stats.lane) {
        Some(existing) => existing.absorb(&stats),
        None => acc.push(stats),
    }
    acc.sort_by_key(|s| Lane::ALL.iter().position(|l| *l == s.lane));
}

fn remaining_budget(deadline: Instant) -> Budget {
    Budget::until(deadline)
}

/// Checks out a warm session or builds a cold one, with `(hits, misses)`
/// warm-start accounting (both zero when `warm` is off).
fn checkout_or_build<S>(
    warm: bool,
    checkout: impl FnOnce() -> Option<S>,
    build: impl FnOnce() -> S,
) -> (S, u64, u64) {
    if !warm {
        return (build(), 0, 0);
    }
    match checkout() {
        Some(s) => (s, 1, 0),
        None => (build(), 0, 1),
    }
}

/// Runs the engine pipeline, sequentially or as a portfolio race
/// depending on [`CheckOptions::mode`]. Both modes produce the same
/// verdict kinds: an attack beats a proof, a proof beats a timeout, and
/// Houdini survivors strengthen the unbounded-proof engines.
///
/// The instance is prepared first (see [`CheckOptions::prepare`]): every
/// engine — both modes, every portfolio lane — runs on the reduced
/// netlist, and any attack trace is lifted back to the input netlist's
/// latch/input indices before the report is returned.
pub fn check_safety(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    run_prepared(task, &opts.prepare, opts.keep_probes, |t| {
        check_safety_engines(t, opts)
    })
}

fn check_safety_engines(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    match opts.mode {
        ExecMode::Sequential => check_safety_sequential(task, opts),
        ExecMode::Portfolio => check_safety_portfolio(task, opts),
    }
}

/// Portfolio mode: one lane per engine, racing under the shared budget.
fn check_safety_portfolio(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    let start = Instant::now();
    let deadline = start + opts.total_budget;
    // Summarize from the raw netlist: every lane builds its own
    // cone-of-influence-reduced TransitionSystem, so building one here
    // too would only delay the race start.
    let mut notes = vec![format!(
        "netlist: {} ands, {} latches, {} inputs, {} assumes, {} bads",
        task.aig.num_ands(),
        task.aig.num_latches(),
        task.aig.num_inputs(),
        task.aig.assumes().len(),
        task.aig.bads().len()
    )];

    let lane_spec = |backend: Box<dyn crate::portfolio::Backend>| {
        let lane = backend.lane();
        let xc = opts.lanes.get(lane).exchange;
        LaneSpec::new(backend, opts.lanes.deadline_for(lane, start, deadline))
            .exchange(xc.import, xc.export)
    };
    let mut engines: Vec<LaneSpec> = vec![lane_spec(Box::new(
        BmcBackend::new(opts.bmc_depth)
            .schedule(opts.lanes.get(Lane::Bmc).depth_schedule.clone())
            .warm(opts.warm_start),
    ))];
    // Extra attack-finding lanes (fuzzing) race in every mode, including
    // attack-only: like BMC they hunt counterexamples, never proofs.
    for factory in &opts.extra_lanes {
        engines.push(lane_spec(factory.build()));
    }
    if !opts.attack_only {
        if opts.kind_max_k > 0 {
            engines.push(lane_spec(Box::new(
                KindBackend::new(opts.kind_max_k).warm(opts.warm_start),
            )));
        }
        if opts.use_pdr {
            engines.push(lane_spec(Box::new(PdrBackend::new(
                opts.pdr_max_frames,
                opts.bmc_depth,
            ))));
        }
        if !task.candidates.is_empty() {
            engines.push(lane_spec(Box::new(
                HoudiniBackend::new(
                    task.candidates.clone(),
                    task.aig.clone(),
                    opts.keep_probes,
                    opts.kind_max_k,
                    if opts.use_pdr { opts.pdr_max_frames } else { 0 },
                    opts.bmc_depth,
                )
                .warm(opts.warm_start),
            )));
        }
    }
    notes.push(format!(
        "portfolio: racing {} engines ({} exchange)",
        engines.len(),
        if opts.exchange.enabled { "with" } else { "no" }
    ));

    let report = race(engines, &task.aig, opts.keep_probes, &opts.exchange);
    let exchange = if opts.exchange.enabled {
        report.exchange_stats()
    } else {
        Vec::new()
    };

    // Merge lane outcomes under the sequential precedence: an attack beats
    // a proof beats a timeout beats inconclusive. Lanes canceled by the
    // winner report Timeout and only contribute notes.
    let mut attack: Option<Box<Trace>> = None;
    let mut proof: Option<ProofEngine> = None;
    let mut certificate: Option<Certificate> = None;
    let mut timed_out = false;
    let mut fuzz: Option<FuzzStats> = None;
    let mut coverage: Option<CoverageStats> = None;
    let mut solver: Vec<LaneSolverStats> = Vec::new();
    for lane in report.lanes {
        if fuzz.is_none() {
            fuzz = lane.fuzz.clone();
        }
        if coverage.is_none() {
            coverage = lane.coverage;
        }
        if let Some(s) = lane.solver {
            record_solver_stats(&mut solver, s);
        }
        let traffic = if opts.exchange.enabled {
            format!(" (imports {}, exports {})", lane.imports, lane.exports)
        } else {
            String::new()
        };
        notes.push(format!(
            "{} [{:.2}s]: {}{traffic}",
            lane.engine,
            lane.elapsed.as_secs_f64(),
            match &lane.outcome {
                EngineOutcome::Attack(t) => format!("attack at depth {}", t.depth()),
                EngineOutcome::Proof(p, _) => format!("proof {p:?}"),
                EngineOutcome::Inconclusive(reason) => reason.to_string(),
                EngineOutcome::Timeout => "timeout/canceled".into(),
            }
        ));
        match lane.outcome {
            EngineOutcome::Attack(t) => {
                // Keep the shallowest counterexample for readability.
                if attack.as_ref().is_none_or(|a| t.depth() < a.depth()) {
                    attack = Some(t);
                }
            }
            EngineOutcome::Proof(p, cert) => {
                // First decisive proof wins; later ones add nothing.
                if proof.is_none() {
                    proof = Some(p);
                    certificate = cert.map(|c| *c);
                }
            }
            EngineOutcome::Timeout => {
                // A lane whose wall cap shortened its deadline below the
                // shared one timed out locally, not globally — unless it
                // was the only meaningful lane (attack-only mode), where
                // the sequential pipeline also reports a global timeout.
                let local_cap = !opts.attack_only && lane.deadline < deadline;
                if !local_cap {
                    timed_out = true;
                }
            }
            EngineOutcome::Inconclusive(_) => {}
        }
    }
    let verdict = if let Some(trace) = attack {
        certificate = None;
        Verdict::Attack(trace)
    } else if let Some(p) = proof {
        Verdict::Proof(p)
    } else if opts.attack_only && !timed_out {
        Verdict::Unknown {
            reason: InconclusiveReason::NoAttackWithinDepth {
                depth: opts.bmc_depth,
            },
        }
    } else if timed_out {
        Verdict::Timeout
    } else {
        Verdict::Unknown {
            reason: InconclusiveReason::AllInconclusive,
        }
    };
    CheckReport {
        verdict,
        elapsed: start.elapsed(),
        notes,
        exchange,
        prepare: Vec::new(),
        fuzz,
        coverage,
        solver,
        certificate: if opts.certify { certificate } else { None },
    }
}

/// The classic one-engine-at-a-time pipeline. The thin wrapper exists so
/// the extra-lane (fuzzing) statistics collected by phase 0 land on
/// whichever report the pipeline eventually returns.
fn check_safety_sequential(task: &SafetyCheck, opts: &CheckOptions) -> CheckReport {
    let mut fuzz = None;
    let mut coverage = None;
    let mut solver = Vec::new();
    let mut report =
        check_safety_sequential_inner(task, opts, &mut fuzz, &mut coverage, &mut solver);
    report.fuzz = fuzz;
    report.coverage = coverage;
    report.solver = solver;
    report
}

fn check_safety_sequential_inner(
    task: &SafetyCheck,
    opts: &CheckOptions,
    fuzz: &mut Option<FuzzStats>,
    coverage: &mut Option<CoverageStats>,
    solver: &mut Vec<LaneSolverStats>,
) -> CheckReport {
    let start = Instant::now();
    let deadline = start + opts.total_budget;
    let mut notes = Vec::new();

    let ts = TransitionSystem::shared(task.aig.clone(), opts.keep_probes);
    notes.push(format!("netlist: {}", ts.summary()));

    // A lane's phase runs until its own wall cap (if any), clipped to the
    // shared deadline; a timeout that only exhausted the lane cap skips
    // the phase instead of ending the check.
    let lane_budget = |lane: Lane| Budget::until(opts.lanes.deadline_for(lane, start, deadline));
    let lane_cap_fired = |lane: Lane| opts.lanes.is_capped(lane) && Instant::now() < deadline;

    // ---- phase 0: extra attack-finding lanes (fuzzing) ---------------------
    // Sequential counterpart of the portfolio's extra lanes: each runs to
    // completion under its lane budget before the solvers start. A leak
    // is an attack like any other; an exhausted campaign is a note.
    for factory in &opts.extra_lanes {
        let backend = factory.build();
        let lane = backend.lane();
        let mut quiet = SharedContext::disabled(lane);
        let outcome = backend.run(&ts, lane_budget(lane), &mut quiet);
        if fuzz.is_none() {
            *fuzz = backend.fuzz_stats();
        }
        if coverage.is_none() {
            *coverage = backend.coverage_stats();
        }
        if let Some(s) = backend.solver_stats() {
            record_solver_stats(solver, s);
        }
        match outcome {
            EngineOutcome::Attack(trace) => {
                notes.push(format!(
                    "{} found attack at depth {}",
                    backend.name(),
                    trace.depth()
                ));
                return CheckReport {
                    verdict: Verdict::Attack(trace),
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate: None,
                };
            }
            EngineOutcome::Proof(p, cert) => {
                return CheckReport {
                    verdict: Verdict::Proof(p),
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate: if opts.certify { cert.map(|c| *c) } else { None },
                };
            }
            EngineOutcome::Inconclusive(reason) => {
                notes.push(format!("{}: {reason}", backend.name()));
            }
            EngineOutcome::Timeout => {
                if lane_cap_fired(lane) {
                    notes.push(format!("{} lane cap exhausted; continuing", backend.name()));
                } else if Instant::now() >= deadline {
                    notes.push(format!("{} timeout", backend.name()));
                    return CheckReport {
                        verdict: Verdict::Timeout,
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate: None,
                    };
                } else {
                    notes.push(format!("{} stopped early; continuing", backend.name()));
                }
            }
        }
    }

    // ---- phase 1: attack search (BMC) -------------------------------------
    let bmc_depth = opts
        .lanes
        .get(Lane::Bmc)
        .depth_schedule
        .last()
        .copied()
        .unwrap_or(opts.bmc_depth);
    let pool = WarmPool::global();
    let (mut bmc_session, bmc_hits, bmc_misses) = checkout_or_build(
        opts.warm_start,
        || pool.checkout_bmc(ts.fingerprint()),
        || BmcSession::new(&ts),
    );
    let bmc_snapshot = bmc_session.solver_stats();
    let bmc_result = bmc_session.run_to(
        bmc_depth,
        lane_budget(Lane::Bmc),
        &mut SharedContext::disabled(Lane::Bmc),
    );
    {
        let mut st = LaneSolverStats::delta(Lane::Bmc, bmc_snapshot, bmc_session.solver_stats());
        st.warm_hits = bmc_hits;
        st.warm_misses = bmc_misses;
        record_solver_stats(solver, st);
    }
    if opts.warm_start && !matches!(bmc_result, BmcResult::Cex(_)) {
        pool.park_bmc(bmc_session);
    }
    match bmc_result {
        BmcResult::Cex(trace) => {
            let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&trace);
            if !(assumes_ok && bad) {
                notes.push("WARNING: counterexample failed simulation replay".into());
            } else {
                notes.push(format!(
                    "cex validated by replay at depth {}",
                    trace.depth()
                ));
            }
            return CheckReport {
                verdict: Verdict::Attack(trace),
                elapsed: start.elapsed(),
                notes,
                exchange: Vec::new(),
                prepare: Vec::new(),
                fuzz: None,
                coverage: None,
                solver: Vec::new(),
                certificate: None,
            };
        }
        BmcResult::Clean { depth_checked } => {
            notes.push(format!("bmc clean to depth {depth_checked}"));
        }
        BmcResult::Timeout { depth_checked } => {
            if lane_cap_fired(Lane::Bmc) && !opts.attack_only {
                notes.push(format!(
                    "bmc lane cap exhausted (clean to {depth_checked:?}); continuing"
                ));
            } else {
                notes.push(format!("bmc timeout (clean to {depth_checked:?})"));
                return CheckReport {
                    verdict: Verdict::Timeout,
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate: None,
                };
            }
        }
    }
    if opts.attack_only {
        return CheckReport {
            verdict: Verdict::Unknown {
                reason: InconclusiveReason::NoAttackWithinDepth {
                    depth: opts.bmc_depth,
                },
            },
            elapsed: start.elapsed(),
            notes,
            exchange: Vec::new(),
            prepare: Vec::new(),
            fuzz: None,
            coverage: None,
            solver: Vec::new(),
            certificate: None,
        };
    }

    // ---- phase 2: Houdini lemmas -------------------------------------------
    let mut proof_aig = task.aig.clone();
    // Surviving candidate indices, remembered so later proof phases can
    // fold them into their certificates (the survivors become assumes of
    // `proof_aig`, so any later invariant is relative to them).
    let mut survivors: Vec<usize> = Vec::new();
    if !task.candidates.is_empty() {
        match houdini(&ts, &task.candidates, lane_budget(Lane::Houdini)) {
            HoudiniResult::Done(out) => {
                notes.push(format!(
                    "houdini: {}/{} candidates survive after {} rounds",
                    out.survivors.len(),
                    task.candidates.len(),
                    out.rounds
                ));
                if out.proves_safety {
                    let certificate = opts.certify.then(|| Certificate {
                        restored: Vec::new(),
                        survivors: out.survivors.clone(),
                        kind: CertKind::Inductive {
                            blocked: Vec::new(),
                        },
                    });
                    return CheckReport {
                        verdict: Verdict::Proof(ProofEngine::Houdini {
                            invariants: out.survivors.len(),
                        }),
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate,
                    };
                }
                // Conjoin surviving invariants as constraints for the
                // remaining engines — sound because they are inductive.
                for &i in &out.survivors {
                    proof_aig.add_assume(task.candidates[i].bit);
                }
                survivors = out.survivors;
            }
            HoudiniResult::Timeout => {
                if lane_cap_fired(Lane::Houdini) {
                    notes.push("houdini lane cap exhausted; continuing unstrengthened".into());
                } else {
                    notes.push("houdini timeout".into());
                    return CheckReport {
                        verdict: Verdict::Timeout,
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate: None,
                    };
                }
            }
        }
    }
    let proof_ts = TransitionSystem::shared(proof_aig, opts.keep_probes);

    // ---- phase 3: k-induction ----------------------------------------------
    if opts.kind_max_k > 0 {
        let (mut kind_session, kind_hits, kind_misses) = checkout_or_build(
            opts.warm_start,
            || pool.checkout_kind(proof_ts.fingerprint(), false),
            || KindSession::new(&proof_ts, false),
        );
        let kind_snapshot = kind_session.solver_stats();
        let kind_result = kind_session.run_to(
            opts.kind_max_k,
            lane_budget(Lane::KInduction),
            &mut SharedContext::disabled(Lane::KInduction),
        );
        {
            let mut st = LaneSolverStats::delta(
                Lane::KInduction,
                kind_snapshot,
                kind_session.solver_stats(),
            );
            st.warm_hits = kind_hits;
            st.warm_misses = kind_misses;
            record_solver_stats(solver, st);
        }
        // A warm session checked out of the pool may carry facts a
        // previous (exchange-enabled) run imported — such a proof is not
        // self-contained, so it ships without a certificate.
        let kind_imports = kind_session.imported_facts();
        // Parking discipline (see crate::warm): Unknown outcomes only.
        if opts.warm_start && matches!(kind_result, KindResult::Unknown { .. }) {
            pool.park_kind(kind_session);
        }
        match kind_result {
            KindResult::Proof { k } => {
                let certificate = (opts.certify && kind_imports == 0).then(|| Certificate {
                    restored: Vec::new(),
                    survivors: survivors.clone(),
                    kind: CertKind::KInduction { k },
                });
                return CheckReport {
                    verdict: Verdict::Proof(ProofEngine::KInduction { k }),
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate,
                };
            }
            KindResult::Cex(trace) => {
                // Deeper than the BMC bound: a real attack. Validate on the
                // original (lemma-free) netlist.
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&trace);
                if assumes_ok && bad {
                    notes.push(format!(
                        "k-induction base found cex at depth {}",
                        trace.depth()
                    ));
                    return CheckReport {
                        verdict: Verdict::Attack(trace),
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate: None,
                    };
                }
                notes.push("k-induction base cex failed replay; ignoring".into());
            }
            KindResult::Unknown { max_k_tried } => {
                notes.push(format!("k-induction inconclusive to k={max_k_tried}"));
            }
            KindResult::Timeout => {
                if lane_cap_fired(Lane::KInduction) {
                    notes.push("k-induction lane cap exhausted; continuing".into());
                } else {
                    notes.push("k-induction timeout".into());
                    return CheckReport {
                        verdict: Verdict::Timeout,
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate: None,
                    };
                }
            }
        }
    }

    // ---- phase 4: PDR --------------------------------------------------------
    if opts.use_pdr {
        let (pdr_result, pdr_raw) = pdr_with_stats(
            &proof_ts,
            PdrOptions {
                max_frames: opts.pdr_max_frames,
                budget: lane_budget(Lane::Pdr),
            },
            &mut SharedContext::disabled(Lane::Pdr),
        );
        record_solver_stats(solver, LaneSolverStats::cold(Lane::Pdr, pdr_raw));
        match pdr_result {
            PdrResult::Proof {
                frames,
                invariant_clauses,
                fixpoint_level,
                invariant,
            } => {
                let certificate = opts.certify.then(|| Certificate {
                    restored: Vec::new(),
                    survivors: survivors.clone(),
                    kind: CertKind::Inductive { blocked: invariant },
                });
                return CheckReport {
                    verdict: Verdict::Proof(ProofEngine::Pdr {
                        frames,
                        clauses: invariant_clauses,
                        fixpoint_level,
                    }),
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate,
                };
            }
            PdrResult::Cex { depth_hint } => {
                notes.push(format!("pdr reports cex near depth {depth_hint}"));
                // Regenerate a concrete trace with BMC beyond the earlier
                // bound — on the warm path this resumes the phase-1
                // session (parked clean at `bmc_depth`) instead of
                // re-unrolling from frame 0.
                let deep = depth_hint.max(opts.bmc_depth + 1) + 8;
                let (mut deep_session, deep_hits, deep_misses) = checkout_or_build(
                    opts.warm_start,
                    || pool.checkout_bmc(ts.fingerprint()),
                    || BmcSession::new(&ts),
                );
                let deep_snapshot = deep_session.solver_stats();
                let deep_result = deep_session.run_to(
                    deep,
                    remaining_budget(deadline),
                    &mut SharedContext::disabled(Lane::Bmc),
                );
                {
                    let mut st = LaneSolverStats::delta(
                        Lane::Bmc,
                        deep_snapshot,
                        deep_session.solver_stats(),
                    );
                    st.warm_hits = deep_hits;
                    st.warm_misses = deep_misses;
                    record_solver_stats(solver, st);
                }
                if opts.warm_start && !matches!(deep_result, BmcResult::Cex(_)) {
                    pool.park_bmc(deep_session);
                }
                if let BmcResult::Cex(trace) = deep_result {
                    let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&trace);
                    if assumes_ok && bad {
                        return CheckReport {
                            verdict: Verdict::Attack(trace),
                            elapsed: start.elapsed(),
                            notes,
                            exchange: Vec::new(),
                            prepare: Vec::new(),
                            fuzz: None,
                            coverage: None,
                            solver: Vec::new(),
                            certificate: None,
                        };
                    }
                }
                notes.push("bmc could not reconstruct pdr cex in budget".into());
                return CheckReport {
                    verdict: Verdict::Timeout,
                    elapsed: start.elapsed(),
                    notes,
                    exchange: Vec::new(),
                    prepare: Vec::new(),
                    fuzz: None,
                    coverage: None,
                    solver: Vec::new(),
                    certificate: None,
                };
            }
            PdrResult::Timeout => {
                if lane_cap_fired(Lane::Pdr) {
                    notes.push("pdr lane cap exhausted".into());
                } else {
                    notes.push("pdr timeout".into());
                    return CheckReport {
                        verdict: Verdict::Timeout,
                        elapsed: start.elapsed(),
                        notes,
                        exchange: Vec::new(),
                        prepare: Vec::new(),
                        fuzz: None,
                        coverage: None,
                        solver: Vec::new(),
                        certificate: None,
                    };
                }
            }
            PdrResult::FrameLimit { frames } => {
                notes.push(format!("pdr frame limit at {frames}"));
            }
        }
    }

    CheckReport {
        verdict: Verdict::Unknown {
            reason: InconclusiveReason::AllInconclusive,
        },
        elapsed: start.elapsed(),
        notes,
        exchange: Vec::new(),
        prepare: Vec::new(),
        fuzz: None,
        coverage: None,
        solver: Vec::new(),
        certificate: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    fn counter_task(width: usize, target: u64, reachable: bool) -> SafetyCheck {
        let mut d = Design::new("t");
        let r = d.reg("r", width, Init::Zero);
        let limit = if reachable {
            (1 << width) - 1
        } else {
            target - 1
        };
        let at_limit = d.eq_const(&r.q(), limit);
        let inc = d.add_const(&r.q(), 1);
        let nxt = d.mux(at_limit, &r.q(), &inc);
        d.set_next(&r, nxt);
        let bad = d.eq_const(&r.q(), target);
        d.assert_always("hit", bad.not());
        SafetyCheck {
            aig: d.finish(),
            candidates: vec![],
        }
    }

    #[test]
    fn attack_found_and_validated() {
        let task = counter_task(4, 6, true);
        let report = check_safety(&task, &CheckOptions::default());
        assert!(report.verdict.is_attack(), "{:?}", report.verdict);
        assert_eq!(report.verdict.cell(), "CEX");
    }

    #[test]
    fn proof_found_for_saturating() {
        let task = counter_task(4, 6, false);
        let report = check_safety(&task, &CheckOptions::default());
        assert!(
            report.verdict.is_proof(),
            "{:?} {:?}",
            report.verdict,
            report.notes
        );
    }

    #[test]
    fn attack_only_mode_reports_unknown() {
        let task = counter_task(4, 6, false);
        let report = check_safety(
            &task,
            &CheckOptions {
                attack_only: true,
                bmc_depth: 4,
                ..Default::default()
            },
        );
        assert!(matches!(report.verdict, Verdict::Unknown { .. }));
    }

    #[test]
    fn deep_cex_beyond_bmc_found_by_pdr_then_reconstructed() {
        // Bad state at depth 12 but BMC capped at 4: PDR flags it, BMC
        // reconstructs.
        let task = counter_task(4, 12, true);
        let report = check_safety(
            &task,
            &CheckOptions {
                bmc_depth: 4,
                kind_max_k: 2,
                ..Default::default()
            },
        );
        assert!(
            report.verdict.is_attack(),
            "{:?} {:?}",
            report.verdict,
            report.notes
        );
    }

    #[test]
    fn zero_budget_times_out() {
        let task = counter_task(4, 6, false);
        let report = check_safety(
            &task,
            &CheckOptions {
                total_budget: Duration::from_secs(0),
                ..Default::default()
            },
        );
        assert!(
            matches!(report.verdict, Verdict::Timeout),
            "{:?}",
            report.verdict
        );
    }

    /// Portfolio mode must agree with the sequential pipeline on verdict
    /// kind for every scenario the sequential tests above cover.
    #[test]
    fn portfolio_matches_sequential_verdicts() {
        let scenarios: Vec<(&str, SafetyCheck, CheckOptions)> = vec![
            ("attack", counter_task(4, 6, true), CheckOptions::default()),
            ("proof", counter_task(4, 6, false), CheckOptions::default()),
            (
                "attack-only unknown",
                counter_task(4, 6, false),
                CheckOptions {
                    attack_only: true,
                    bmc_depth: 4,
                    ..Default::default()
                },
            ),
            (
                "deep cex via pdr",
                counter_task(4, 12, true),
                CheckOptions {
                    bmc_depth: 4,
                    kind_max_k: 2,
                    ..Default::default()
                },
            ),
            (
                "zero budget",
                counter_task(4, 6, false),
                CheckOptions {
                    total_budget: Duration::from_secs(0),
                    ..Default::default()
                },
            ),
            // Attack-only with a spent BMC lane cap: both modes must
            // report the same (global) timeout — there is no other lane
            // to fall through to.
            (
                "attack-only with capped bmc",
                counter_task(4, 6, false),
                CheckOptions {
                    attack_only: true,
                    lanes: crate::lane::LanePlan::new().with(
                        crate::lane::Lane::Bmc,
                        crate::lane::LaneBudget::wall(Duration::ZERO),
                    ),
                    ..Default::default()
                },
            ),
        ];
        for (label, task, opts) in scenarios {
            let seq = check_safety(&task, &opts);
            let par = check_safety(&task, &opts.clone().portfolio());
            assert_eq!(
                seq.verdict.cell(),
                par.verdict.cell(),
                "{label}: sequential {:?} vs portfolio {:?}\nportfolio notes: {:?}",
                seq.verdict,
                par.verdict,
                par.notes
            );
        }
    }

    /// A wall-capped lane that exhausts only its own clock is skipped in
    /// sequential mode and ignored in portfolio mode — the check still
    /// reaches the proof engines instead of reporting a global timeout.
    #[test]
    fn bmc_lane_cap_skips_phase_instead_of_timing_out() {
        use crate::lane::{Lane, LaneBudget, LanePlan};
        let task = counter_task(4, 6, false);
        for mode in [ExecMode::Sequential, ExecMode::Portfolio] {
            let opts = CheckOptions {
                lanes: LanePlan::new().with(Lane::Bmc, LaneBudget::wall(Duration::ZERO)),
                mode,
                ..Default::default()
            };
            let report = check_safety(&task, &opts);
            assert!(
                report.verdict.is_proof(),
                "{mode:?}: {:?} {:?}",
                report.verdict,
                report.notes
            );
        }
    }

    /// A BMC depth schedule still finds attacks beyond its shallow steps
    /// (and beyond `bmc_depth`, which the schedule overrides).
    #[test]
    fn bmc_depth_schedule_reaches_deep_attack() {
        use crate::lane::{Lane, LaneBudget, LanePlan};
        let task = counter_task(4, 6, true);
        for mode in [ExecMode::Sequential, ExecMode::Portfolio] {
            let opts = CheckOptions {
                bmc_depth: 2,
                attack_only: true,
                lanes: LanePlan::new().with(Lane::Bmc, LaneBudget::depths(&[2, 4, 8])),
                mode,
                ..Default::default()
            };
            let report = check_safety(&task, &opts);
            assert!(
                report.verdict.is_attack(),
                "{mode:?}: {:?} {:?}",
                report.verdict,
                report.notes
            );
        }
    }

    /// The exchange bus only ships implied facts, so switching it on must
    /// never change a portfolio verdict — and the report must carry the
    /// per-lane traffic counters.
    #[test]
    fn exchange_on_portfolio_matches_off_and_records_stats() {
        let scenarios: Vec<(&str, SafetyCheck, CheckOptions)> = vec![
            ("attack", counter_task(4, 6, true), CheckOptions::default()),
            ("proof", counter_task(4, 6, false), CheckOptions::default()),
            (
                "deep cex via pdr",
                counter_task(4, 12, true),
                CheckOptions {
                    bmc_depth: 4,
                    kind_max_k: 2,
                    ..Default::default()
                },
            ),
        ];
        for (label, task, opts) in scenarios {
            let off = check_safety(&task, &opts.clone().portfolio());
            let on = check_safety(
                &task,
                &opts.clone().portfolio().with_exchange(ExchangeConfig::on()),
            );
            assert_eq!(
                off.verdict.cell(),
                on.verdict.cell(),
                "{label}: off {:?} vs on {:?}\non notes: {:?}",
                off.verdict,
                on.verdict,
                on.notes
            );
            assert!(off.exchange.is_empty(), "{label}: off must report no bus");
            assert!(
                !on.exchange.is_empty(),
                "{label}: on must report per-lane stats"
            );
        }
    }

    /// An exchange opt-out in the lane plan silences that lane's side of
    /// the bus.
    #[test]
    fn lane_exchange_opt_out_is_honored() {
        use crate::lane::{LaneBudget, LaneExchange, LanePlan};
        let task = counter_task(4, 6, false);
        let opts = CheckOptions {
            lanes: LanePlan::new().with(
                Lane::Bmc,
                LaneBudget::default().with_exchange(LaneExchange {
                    import: false,
                    export: false,
                }),
            ),
            ..CheckOptions::default()
        }
        .portfolio()
        .with_exchange(ExchangeConfig::on());
        let report = check_safety(&task, &opts);
        let bmc = report
            .exchange
            .iter()
            .find(|s| s.lane == Lane::Bmc)
            .expect("bmc lane stats present");
        assert_eq!(bmc.imports, 0);
        assert_eq!(bmc.exports, 0);
    }

    /// The portfolio prefers an attack over a proof when both lanes report
    /// (can happen when a canceled-but-decided proof lane drains late).
    #[test]
    fn portfolio_attack_beats_proof_on_unsafe_design() {
        let task = counter_task(4, 6, true);
        let report = check_safety(&task, &CheckOptions::default().portfolio());
        assert!(
            report.verdict.is_attack(),
            "{:?} {:?}",
            report.verdict,
            report.notes
        );
    }
}

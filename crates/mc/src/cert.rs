//! Certificate material: self-contained proof artifacts.
//!
//! A [`Certificate`] captures, in **raw-netlist vocabulary**, everything
//! an independent checker needs to re-establish a `Proven` verdict
//! without rerunning the engines: the inductive invariant PDR converged
//! on (or Houdini's surviving candidates, or k-induction's closing
//! `k`), plus the constants the preparation pipeline folded away before
//! the engines ever saw the instance.
//!
//! The engines *emit* this material (it is free — no extra SAT calls at
//! proof time); the `csl_certify` crate *checks* it with three fresh SAT
//! queries (init ⊆ Inv, consecution, Inv ⊆ safe) against the unprepared
//! netlist, independently auditing the whole transform pipeline end to
//! end. Attack verdicts are covered by the dual artifact: the lifted
//! [`Trace`](crate::Trace) replayed concretely by
//! [`Sim::replay`](crate::Sim::replay).

use crate::pdr::Cube;

/// How a certificate's support set proves safety.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertKind {
    /// A 1-inductive invariant: the conjunction of the support set and
    /// the negation of every blocked cube is init-true, closed under
    /// one transition (with assumes held), and excludes all bad states.
    Inductive {
        /// Blocked cubes over raw latch `(index, value)` pairs; each
        /// contributes the clause ¬cube to the invariant.
        blocked: Vec<Cube>,
    },
    /// A k-induction proof: no bad state within `k` steps of reset, and
    /// `k` consecutive good states (under the support set and assumes)
    /// force a good successor.
    KInduction {
        /// The closing depth (≥ 1).
        k: usize,
    },
}

/// A checkable proof artifact in raw-netlist vocabulary.
///
/// The invariant it denotes is the conjunction of three parts:
///
/// 1. each `restored` latch holds its constant value,
/// 2. each surviving candidate invariant (indexed into the raw task's
///    candidate list) holds,
/// 3. for [`CertKind::Inductive`], the negation of every blocked cube.
///
/// All three parts are established jointly (mutual induction over a
/// conjunction is sound), so the checker asserts them together and
/// queries each conjunct's consecution separately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Raw latches the preparation pipeline proved stuck at a constant,
    /// as `(latch_index, value)` — from
    /// [`Reconstruction::restored_constants`](csl_hdl::xform::Reconstruction::restored_constants).
    pub restored: Vec<(u32, bool)>,
    /// Indices into the raw task's candidate list that survived Houdini
    /// (empty when no candidate filtering ran).
    pub survivors: Vec<usize>,
    /// The engine-specific closing argument.
    pub kind: CertKind,
}

impl Certificate {
    /// Total conjuncts in the invariant this certificate denotes.
    pub fn conjuncts(&self) -> usize {
        self.restored.len()
            + self.survivors.len()
            + match &self.kind {
                CertKind::Inductive { blocked } => blocked.len(),
                CertKind::KInduction { .. } => 0,
            }
    }

    /// Short human summary for notes and logs.
    pub fn summary(&self) -> String {
        match &self.kind {
            CertKind::Inductive { blocked } => format!(
                "inductive certificate: {} clauses, {} survivors, {} restored constants",
                blocked.len(),
                self.survivors.len(),
                self.restored.len()
            ),
            CertKind::KInduction { k } => format!(
                "k-induction certificate: k={}, {} survivors, {} restored constants",
                k,
                self.survivors.len(),
                self.restored.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_count_spans_all_parts() {
        let c = Certificate {
            restored: vec![(0, false), (3, true)],
            survivors: vec![1],
            kind: CertKind::Inductive {
                blocked: vec![vec![(2, true)], vec![(0, false), (1, true)]],
            },
        };
        assert_eq!(c.conjuncts(), 5);
        assert!(c.summary().contains("2 clauses"));
        let k = Certificate {
            restored: vec![],
            survivors: vec![],
            kind: CertKind::KInduction { k: 4 },
        };
        assert_eq!(k.conjuncts(), 0);
        assert!(k.summary().contains("k=4"));
    }
}

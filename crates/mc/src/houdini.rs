//! Houdini-style invariant filtering.
//!
//! Given a set of *candidate* invariant bits (in this project: relational
//! equalities between corresponding registers of the two processor copies,
//! the candidate family LEAVE generates automatically), compute the largest
//! subset that is simultaneously (a) true in all constrained initial states
//! and (b) inductive under the constrained transition relation. The
//! survivors are sound invariants: they may be conjoined to other engines
//! as assumes, and if they exclude the bad states the property is proved —
//! exactly LEAVE's proof structure, and the concrete version of the paper's
//! §8 observation that shadow-logic constraints act as invariants.

use csl_hdl::Bit;
use std::sync::Arc;

use csl_sat::{Budget, Lit, SolveResult};

use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// A named candidate invariant bit.
#[derive(Clone, Debug)]
pub struct Candidate {
    pub name: String,
    pub bit: Bit,
}

/// Outcome of a Houdini run.
#[derive(Debug)]
pub enum HoudiniResult {
    /// Fixpoint reached.
    Done(HoudiniOutcome),
    /// Budget exhausted mid-search.
    Timeout,
}

/// The surviving invariant set and run diagnostics.
#[derive(Debug)]
pub struct HoudiniOutcome {
    /// Indices into the candidate slice that survived filtering.
    pub survivors: Vec<usize>,
    /// How many got dropped by the init-state filter.
    pub dropped_at_init: usize,
    /// Consecution refinement iterations performed.
    pub rounds: usize,
    /// Whether the surviving invariants exclude every bad state — i.e.
    /// whether this alone constitutes a safety proof (LEAVE's success case).
    pub proves_safety: bool,
}

/// Runs the Houdini fixpoint. See the module docs.
pub fn houdini(
    ts: &Arc<TransitionSystem>,
    candidates: &[Candidate],
    budget: Budget,
) -> HoudiniResult {
    houdini_with(ts, candidates, budget, None)
}

/// Observer invoked once per survivor (with its candidate index) the
/// moment the survivor set is proved — see [`houdini_with`].
pub type SurvivorStream<'s> = &'s mut dyn FnMut(usize, &Candidate);

/// [`houdini`] with a survivor stream: `on_proven` fires once per
/// survivor the moment the consecution fixpoint lands — the earliest
/// sound publication point (no candidate is an invariant until the whole
/// remaining set passes consecution simultaneously) and strictly before
/// the safety check, the return, and any strengthened re-runs. The
/// portfolio's Houdini lane uses this to stream lemmas onto the exchange
/// bus while it keeps working.
pub fn houdini_with(
    ts: &Arc<TransitionSystem>,
    candidates: &[Candidate],
    budget: Budget,
    mut on_proven: Option<SurvivorStream<'_>>,
) -> HoudiniResult {
    // ---- phase 1: drop candidates violated in some initial state ---------
    let mut init = Unroller::new(ts, InitMode::Reset);
    init.set_budget(budget.clone());
    init.assert_assumes_through(0);
    let mut alive: Vec<bool> = vec![true; candidates.len()];
    let mut dropped_at_init = 0;
    for (i, c) in candidates.iter().enumerate() {
        let l = init.lit_of(c.bit, 0);
        match init.solve_with(&[!l]) {
            SolveResult::Sat => {
                alive[i] = false;
                dropped_at_init += 1;
            }
            SolveResult::Unsat => {}
            SolveResult::Canceled => return HoudiniResult::Timeout,
        }
    }

    // ---- phase 2: consecution fixpoint ------------------------------------
    let mut step = Unroller::new(ts, InitMode::Free);
    step.set_budget(budget.clone());
    step.assert_assumes_through(1);
    let lits0: Vec<Lit> = candidates.iter().map(|c| step.lit_of(c.bit, 0)).collect();
    let lits1: Vec<Lit> = candidates.iter().map(|c| step.lit_of(c.bit, 1)).collect();

    let mut rounds = 0;
    loop {
        rounds += 1;
        let survivors: Vec<usize> = (0..candidates.len()).filter(|&i| alive[i]).collect();
        if survivors.is_empty() {
            break;
        }
        // y -> (some surviving candidate is false at frame 1)
        let y = step.solver.new_var().positive();
        let mut clause = vec![!y];
        clause.extend(survivors.iter().map(|&i| !lits1[i]));
        step.solver.add_clause(&clause);
        let mut assumptions: Vec<Lit> = survivors.iter().map(|&i| lits0[i]).collect();
        assumptions.push(y);
        match step.solve_with(&assumptions) {
            SolveResult::Unsat => {
                // Fixpoint: every remaining candidate passed consecution
                // simultaneously — they are invariants as of *now*, so
                // stream them before the safety check below.
                if let Some(stream) = on_proven.as_mut() {
                    for &i in &survivors {
                        stream(i, &candidates[i]);
                    }
                }
                // Retire the helper variable and finish.
                step.solver.add_clause(&[!y]);
                break;
            }
            SolveResult::Sat => {
                let mut dropped_any = false;
                for &i in &survivors {
                    if step.solver.value(lits1[i]) == Some(false) {
                        alive[i] = false;
                        dropped_any = true;
                    }
                }
                debug_assert!(dropped_any, "SAT consecution round must drop something");
                step.solver.add_clause(&[!y]);
            }
            SolveResult::Canceled => return HoudiniResult::Timeout,
        }
    }

    // ---- phase 3: do the survivors exclude the bad states? ----------------
    let survivors: Vec<usize> = (0..candidates.len()).filter(|&i| alive[i]).collect();
    let bad = step.bad_any_at(0);
    let mut assumptions: Vec<Lit> = survivors.iter().map(|&i| lits0[i]).collect();
    assumptions.push(bad);
    let proves_safety = match step.solve_with(&assumptions) {
        SolveResult::Unsat => true,
        SolveResult::Sat => false,
        SolveResult::Canceled => return HoudiniResult::Timeout,
    };

    HoudiniResult::Done(HoudiniOutcome {
        survivors,
        dropped_at_init,
        rounds,
        proves_safety,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::{Design, Init};

    /// Two identical counters; candidate: they stay equal. Bad: they differ.
    #[test]
    fn equality_of_lockstep_counters_survives_and_proves() {
        let mut d = Design::new("t");
        let a = d.reg("a", 3, Init::Zero);
        let b = d.reg("b", 3, Init::Zero);
        let an = d.add_const(&a.q(), 1);
        let bn = d.add_const(&b.q(), 1);
        d.set_next(&a, an);
        d.set_next(&b, bn);
        let eq = d.eq(&a.q(), &b.q());
        d.assert_always("equal", eq);
        let cand = Candidate {
            name: "a==b".into(),
            bit: eq,
        };
        let ts = TransitionSystem::shared(d.finish(), false);
        match houdini(&ts, &[cand], Budget::unlimited()) {
            HoudiniResult::Done(o) => {
                assert_eq!(o.survivors, vec![0]);
                assert!(o.proves_safety);
            }
            HoudiniResult::Timeout => panic!("unexpected timeout"),
        }
    }

    /// Candidate violated at init gets dropped and the proof fails.
    #[test]
    fn init_violated_candidate_dropped() {
        let mut d = Design::new("t");
        let a = d.reg("a", 2, Init::Zero);
        let b = d.reg("b", 2, Init::Symbolic);
        d.hold(&a);
        d.hold(&b);
        let eq = d.eq(&a.q(), &b.q());
        d.assert_always("equal", eq);
        let cand = Candidate {
            name: "a==b".into(),
            bit: eq,
        };
        let ts = TransitionSystem::shared(d.finish(), false);
        match houdini(&ts, &[cand], Budget::unlimited()) {
            HoudiniResult::Done(o) => {
                assert!(o.survivors.is_empty());
                assert_eq!(o.dropped_at_init, 1);
                assert!(!o.proves_safety);
            }
            HoudiniResult::Timeout => panic!("unexpected timeout"),
        }
    }

    /// A non-inductive candidate is eliminated in the consecution loop:
    /// two counters that diverge after an input pulse.
    #[test]
    fn non_inductive_candidate_eliminated() {
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let a = d.reg("a", 3, Init::Zero);
        let b = d.reg("b", 3, Init::Zero);
        let an = d.add_const(&a.q(), 1);
        d.set_next(&a, an);
        let binc = d.add_const(&b.q(), 1);
        let b2 = d.add_const(&b.q(), 2);
        let bn = d.mux(x, &b2, &binc);
        d.set_next(&b, bn);
        let eq = d.eq(&a.q(), &b.q());
        d.assert_always("equal", eq);
        let cand = Candidate {
            name: "a==b".into(),
            bit: eq,
        };
        let ts = TransitionSystem::shared(d.finish(), false);
        match houdini(&ts, &[cand], Budget::unlimited()) {
            HoudiniResult::Done(o) => {
                assert!(o.survivors.is_empty());
                assert_eq!(o.dropped_at_init, 0);
                assert!(!o.proves_safety, "LEAVE-style UNKNOWN expected");
            }
            HoudiniResult::Timeout => panic!("unexpected timeout"),
        }
    }

    /// An assume can rescue a candidate that would otherwise not be
    /// inductive — the mechanism behind the shadow logic's constraining
    /// power (§8).
    #[test]
    fn assumes_strengthen_induction() {
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let a = d.reg("a", 3, Init::Zero);
        let b = d.reg("b", 3, Init::Zero);
        let an = d.add_const(&a.q(), 1);
        d.set_next(&a, an);
        let binc = d.add_const(&b.q(), 1);
        let b2 = d.add_const(&b.q(), 2);
        let bn = d.mux(x, &b2, &binc);
        d.set_next(&b, bn);
        let eq = d.eq(&a.q(), &b.q());
        d.assert_always("equal", eq);
        d.assume(x.not()); // forbid the divergence-inducing input
        let cand = Candidate {
            name: "a==b".into(),
            bit: eq,
        };
        let ts = TransitionSystem::shared(d.finish(), false);
        match houdini(&ts, &[cand], Budget::unlimited()) {
            HoudiniResult::Done(o) => {
                assert_eq!(o.survivors, vec![0]);
                assert!(o.proves_safety);
            }
            HoudiniResult::Timeout => panic!("unexpected timeout"),
        }
    }
}

//! Bounded model checking.
//!
//! Unrolls the design frame by frame inside one incremental SAT instance
//! and asks, at each depth, whether some bad bit can fire while every
//! assume bit holds at every cycle up to and including that depth. This is
//! the attack-finding engine: a SAT answer is a concrete program + secret
//! pair that satisfies the contract constraint check yet produces divergent
//! microarchitectural observations.

use std::sync::Arc;

use csl_sat::{Budget, SolveResult, SolverStats};

use crate::exchange::{ExchangeItem, SharedContext, SharedInvariant, SharedLemma};
use crate::lane::Lane;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// The caller's bus memory for [`bmc_with`]: imported lemmas and
/// invariant clauses accumulate here so a depth-schedule walk can
/// re-assert them in each step's fresh unroller.
#[derive(Default)]
pub struct BusMemory {
    pub lemmas: Vec<SharedLemma>,
    pub invariants: Vec<SharedInvariant>,
}

/// Outcome of a BMC run.
#[derive(Debug)]
pub enum BmcResult {
    /// A counterexample of the given depth (cycles) was found.
    Cex(Box<Trace>),
    /// No counterexample exists up to (and including) this depth.
    Clean { depth_checked: usize },
    /// Budget exhausted; clean up to `depth_checked` (possibly 0 frames).
    Timeout { depth_checked: Option<usize> },
}

impl BmcResult {
    /// Convenience: the trace if a counterexample was found.
    pub fn cex(&self) -> Option<&Trace> {
        match self {
            BmcResult::Cex(t) => Some(t),
            _ => None,
        }
    }
}

/// Runs BMC from depth 0 to `max_depth` (inclusive) under `budget`.
pub fn bmc(ts: &Arc<TransitionSystem>, max_depth: usize, budget: Budget) -> BmcResult {
    bmc_with(
        ts,
        max_depth,
        budget,
        &mut SharedContext::disabled(Lane::Bmc),
        &mut BusMemory::default(),
    )
}

/// [`bmc`] attached to the exchange bus: learnt clauses stream out
/// through the [`csl_sat::Solver`] export hook at conflict boundaries,
/// and foreign invariant lemmas — plus PDR's exported invariant clauses
/// — are polled between depths and asserted at every frame (sound: both
/// hold in every reachable assume-satisfying state, and every model of
/// the reset-initialised unrolling is such a run prefix — so the
/// pruning can never mask a real counterexample).
///
/// `memory` is the caller's bus memory: imports accumulate there so a
/// depth-schedule walk can re-assert them in each step's fresh unroller.
pub fn bmc_with(
    ts: &Arc<TransitionSystem>,
    max_depth: usize,
    budget: Budget,
    ctx: &mut SharedContext,
    memory: &mut BusMemory,
) -> BmcResult {
    let mut session = BmcSession::new(ts);
    std::mem::swap(&mut session.memory, memory);
    let result = session.run_to(max_depth, budget, ctx);
    std::mem::swap(&mut session.memory, memory);
    result
}

/// A persistent BMC solving session: one reset-initialised [`Unroller`]
/// whose learnt clauses, blocked-depth units and imported bus facts
/// survive across [`BmcSession::run_to`] calls. This is the warm-start
/// primitive for the attack-finding lane — a progressive depth schedule
/// continues where the previous step stopped instead of re-unrolling
/// from frame 0, and a parked session checked back out of the
/// [`crate::warm::WarmPool`] resumes a *later query* the same way.
///
/// # Soundness
/// Everything the session retains between runs is a consequence of the
/// reset-initialised unrolling of its [`TransitionSystem`]: learnt
/// clauses, the `!bad(k)` units added after each UNSAT depth, and bus
/// lemmas/invariants (implied facts about the same netlist, per the
/// exchange rules). None of it is query-specific, so re-running at any
/// depth returns the verdict a fresh solver would — depths at or below
/// [`BmcSession::clean_to`] are *proven* clean and answered without
/// solving.
pub struct BmcSession {
    u: Unroller,
    memory: BusMemory,
    clean_to: Option<usize>,
}

impl BmcSession {
    /// A fresh session over `ts` with nothing checked yet.
    pub fn new(ts: &Arc<TransitionSystem>) -> BmcSession {
        BmcSession {
            u: Unroller::new(ts, InitMode::Reset),
            memory: BusMemory::default(),
            clean_to: None,
        }
    }

    /// Deepest depth proven counterexample-free so far.
    pub fn clean_to(&self) -> Option<usize> {
        self.clean_to
    }

    /// The transition system this session encodes.
    pub fn ts(&self) -> &Arc<TransitionSystem> {
        self.u.ts()
    }

    /// Cumulative statistics of the session's solver (across all runs).
    pub fn solver_stats(&self) -> SolverStats {
        self.u.solver.stats
    }

    /// Garbage the session's solver is dragging along (see
    /// [`csl_sat::Solver::wasted_literals`]); the pool's park-hygiene
    /// input.
    pub fn wasted_literals(&self) -> usize {
        self.u.solver.wasted_literals()
    }

    /// Detaches the session from its check's exchange bus so it can be
    /// parked: the export hook holds a [`crate::exchange::ClauseExporter`]
    /// whose frame horizons belong to the ending check, and clauses
    /// learnt during a later run must not be published through it.
    pub fn prepare_for_park(&mut self) {
        self.u.disable_clause_export();
    }

    /// Checks depths up to `max_depth` (inclusive), resuming after the
    /// deepest depth already proven clean. Re-arms clause export against
    /// `ctx`'s bus for this run (and only this run). A re-query at or
    /// below [`BmcSession::clean_to`] is answered `Clean` without
    /// touching the solver.
    pub fn run_to(
        &mut self,
        max_depth: usize,
        budget: Budget,
        ctx: &mut SharedContext,
    ) -> BmcResult {
        let u = &mut self.u;
        u.set_budget(budget.clone());
        u.disable_clause_export();
        if let Some(exporter) = ctx.clause_exporter() {
            // The *live* policy: adaptive buses move the thresholds with
            // import hit rates and coverage deltas between runs.
            let policy = ctx.export_policy().expect("exporter implies a bus");
            u.enable_clause_export(exporter, policy);
        }
        let start = match self.clean_to {
            Some(c) if c >= max_depth => {
                // Every depth <= max_depth carries a `!bad` unit already:
                // answer what a fresh solver would, without solving.
                return BmcResult::Clean {
                    depth_checked: max_depth,
                };
            }
            Some(c) => c + 1,
            None => 0,
        };
        for k in start..=max_depth {
            if budget.out_of_time() {
                return BmcResult::Timeout {
                    depth_checked: self.clean_to,
                };
            }
            u.assert_assumes_through(k);
            for item in ctx.poll() {
                match &*item {
                    ExchangeItem::Lemma(l) => {
                        // Catch the new lemma up on the frames already
                        // encoded; frame `k` is covered by the sweep below.
                        for f in 0..k {
                            u.assert_lemma_at(l.bit, f);
                        }
                        self.memory.lemmas.push(l.clone());
                        ctx.note_imported(1);
                    }
                    ExchangeItem::Invariant(inv) => {
                        for f in 0..k {
                            u.assert_clause_at(&inv.lits, f);
                        }
                        self.memory.invariants.push(inv.clone());
                        ctx.note_imported(1);
                    }
                    // Clauses are for the k-induction base instance;
                    // obligations/frontiers are fuzz↔PDR traffic.
                    ExchangeItem::Clause(_)
                    | ExchangeItem::Obligation(_)
                    | ExchangeItem::Frontier(_) => {}
                }
            }
            for l in self.memory.lemmas.iter() {
                u.assert_lemma_at(l.bit, k);
            }
            for inv in self.memory.invariants.iter() {
                u.assert_clause_at(&inv.lits, k);
            }
            let bad = u.bad_any_at(k);
            match u.solve_with(&[bad]) {
                SolveResult::Sat => {
                    let name = u
                        .fired_bad_name(k)
                        .unwrap_or_else(|| "<unknown bad>".to_string());
                    let trace = u.extract_trace(k + 1, name);
                    return BmcResult::Cex(Box::new(trace));
                }
                SolveResult::Unsat => {
                    self.clean_to = Some(k);
                    // Block this depth's bad permanently: helps the next
                    // depths — and answers warm re-queries at this depth.
                    u.solver.add_clause(&[!bad]);
                }
                SolveResult::Canceled => {
                    return BmcResult::Timeout {
                        depth_checked: self.clean_to,
                    };
                }
            }
        }
        BmcResult::Clean {
            depth_checked: self
                .clean_to
                .expect("loop ran to max_depth, so some depth was checked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use csl_hdl::{Design, Init};
    use std::time::Instant;

    /// Counter that reaches the bad value `target` after `target` cycles.
    fn counter_design(width: usize, target: u64) -> Arc<TransitionSystem> {
        let mut d = Design::new("counter");
        let c = d.reg("c", width, Init::Zero);
        let nxt = d.add_const(&c.q(), 1);
        d.set_next(&c, nxt);
        let hit = d.eq_const(&c.q(), target);
        d.assert_always("no_hit", hit.not());
        TransitionSystem::shared(d.finish(), false)
    }

    #[test]
    fn finds_counter_cex_at_exact_depth() {
        let ts = counter_design(4, 5);
        match bmc(&ts, 16, Budget::unlimited()) {
            BmcResult::Cex(t) => {
                assert_eq!(t.depth(), 6); // cycles 0..=5
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&t);
                assert!(assumes_ok && bad, "cex must replay");
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn clean_when_target_unreachable() {
        // 3-bit counter wraps 0..7; target 5 reachable, but depth < 5 clean.
        let ts = counter_design(3, 5);
        match bmc(&ts, 4, Budget::unlimited()) {
            BmcResult::Clean { depth_checked } => assert_eq!(depth_checked, 4),
            other => panic!("expected clean, got {other:?}"),
        }
    }

    #[test]
    fn assumes_block_counterexamples() {
        // Input x must pulse for the counter to advance, but we assume !x:
        // the bad value is never reached.
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let c = d.reg("c", 3, Init::Zero);
        let inc = d.add_const(&c.q(), 1);
        let nxt = d.mux(x, &inc, &c.q());
        d.set_next(&c, nxt);
        let hit = d.eq_const(&c.q(), 2);
        d.assert_always("no2", hit.not());
        d.assume(x.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match bmc(&ts, 10, Budget::unlimited()) {
            BmcResult::Clean { .. } => {}
            other => panic!("expected clean, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_init_found_at_depth_zero() {
        // A symbolic register equal to 9 at cycle 0 violates the property.
        let mut d = Design::new("t");
        let r = d.reg("r", 4, Init::Symbolic);
        d.hold(&r);
        let hit = d.eq_const(&r.q(), 9);
        d.assert_always("no9", hit.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match bmc(&ts, 0, Budget::unlimited()) {
            BmcResult::Cex(t) => {
                assert_eq!(t.depth(), 1);
                let (ok, bad) = Sim::new(ts.aig()).replay(&t);
                assert!(ok && bad);
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn budget_timeout_reported() {
        let ts = counter_design(4, 9);
        let budget = Budget::until(Instant::now());
        match bmc(&ts, 16, budget) {
            BmcResult::Timeout { .. } => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn input_driven_cex_extracts_inputs() {
        // Bad iff input x is true at cycle 2 (tracked by a 2-bit timer).
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let t = d.reg("t", 2, Init::Zero);
        let at2 = d.eq_const(&t.q(), 2);
        let nxt = d.add_const(&t.q(), 1);
        d.set_next(&t, nxt);
        let fire = d.and_bit(at2, x);
        d.assert_always("no_fire", fire.not());
        let ts = TransitionSystem::shared(d.finish(), false);
        match bmc(&ts, 8, Budget::unlimited()) {
            BmcResult::Cex(tr) => {
                assert_eq!(tr.depth(), 3);
                assert_eq!(tr.input(2, 0), Some(true));
                let (ok, bad) = Sim::new(ts.aig()).replay(&tr);
                assert!(ok && bad);
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }
}

//! Bounded model checking.
//!
//! Unrolls the design frame by frame inside one incremental SAT instance
//! and asks, at each depth, whether some bad bit can fire while every
//! assume bit holds at every cycle up to and including that depth. This is
//! the attack-finding engine: a SAT answer is a concrete program + secret
//! pair that satisfies the contract constraint check yet produces divergent
//! microarchitectural observations.

use csl_sat::{Budget, SolveResult};

use crate::exchange::{ExchangeItem, SharedContext, SharedInvariant, SharedLemma};
use crate::lane::Lane;
use crate::trace::Trace;
use crate::ts::TransitionSystem;
use crate::unroll::{InitMode, Unroller};

/// The caller's bus memory for [`bmc_with`]: imported lemmas and
/// invariant clauses accumulate here so a depth-schedule walk can
/// re-assert them in each step's fresh unroller.
#[derive(Default)]
pub struct BusMemory {
    pub lemmas: Vec<SharedLemma>,
    pub invariants: Vec<SharedInvariant>,
}

/// Outcome of a BMC run.
#[derive(Debug)]
pub enum BmcResult {
    /// A counterexample of the given depth (cycles) was found.
    Cex(Box<Trace>),
    /// No counterexample exists up to (and including) this depth.
    Clean { depth_checked: usize },
    /// Budget exhausted; clean up to `depth_checked` (possibly 0 frames).
    Timeout { depth_checked: Option<usize> },
}

impl BmcResult {
    /// Convenience: the trace if a counterexample was found.
    pub fn cex(&self) -> Option<&Trace> {
        match self {
            BmcResult::Cex(t) => Some(t),
            _ => None,
        }
    }
}

/// Runs BMC from depth 0 to `max_depth` (inclusive) under `budget`.
pub fn bmc(ts: &TransitionSystem, max_depth: usize, budget: Budget) -> BmcResult {
    bmc_with(
        ts,
        max_depth,
        budget,
        &mut SharedContext::disabled(Lane::Bmc),
        &mut BusMemory::default(),
    )
}

/// [`bmc`] attached to the exchange bus: learnt clauses stream out
/// through the [`csl_sat::Solver`] export hook at conflict boundaries,
/// and foreign invariant lemmas — plus PDR's exported invariant clauses
/// — are polled between depths and asserted at every frame (sound: both
/// hold in every reachable assume-satisfying state, and every model of
/// the reset-initialised unrolling is such a run prefix — so the
/// pruning can never mask a real counterexample).
///
/// `memory` is the caller's bus memory: imports accumulate there so a
/// depth-schedule walk can re-assert them in each step's fresh unroller.
pub fn bmc_with(
    ts: &TransitionSystem,
    max_depth: usize,
    budget: Budget,
    ctx: &mut SharedContext,
    memory: &mut BusMemory,
) -> BmcResult {
    let mut u = Unroller::new(ts, InitMode::Reset);
    u.set_budget(budget.clone());
    if let Some(exporter) = ctx.clause_exporter() {
        let policy = ctx
            .config()
            .expect("exporter implies a bus")
            .export_policy();
        u.enable_clause_export(exporter, policy);
    }
    let mut checked: Option<usize> = None;
    for k in 0..=max_depth {
        if budget.out_of_time() {
            return BmcResult::Timeout {
                depth_checked: checked,
            };
        }
        u.assert_assumes_through(k);
        for item in ctx.poll() {
            match &*item {
                ExchangeItem::Lemma(l) => {
                    // Catch the new lemma up on the frames already
                    // encoded; frame `k` is covered by the sweep below.
                    for f in 0..k {
                        u.assert_lemma_at(l.bit, f);
                    }
                    memory.lemmas.push(l.clone());
                    ctx.note_imported(1);
                }
                ExchangeItem::Invariant(inv) => {
                    for f in 0..k {
                        u.assert_clause_at(&inv.lits, f);
                    }
                    memory.invariants.push(inv.clone());
                    ctx.note_imported(1);
                }
                ExchangeItem::Clause(_) => {}
            }
        }
        for l in memory.lemmas.iter() {
            u.assert_lemma_at(l.bit, k);
        }
        for inv in memory.invariants.iter() {
            u.assert_clause_at(&inv.lits, k);
        }
        let bad = u.bad_any_at(k);
        match u.solve_with(&[bad]) {
            SolveResult::Sat => {
                let name = u
                    .fired_bad_name(k)
                    .unwrap_or_else(|| "<unknown bad>".to_string());
                let trace = u.extract_trace(k + 1, name);
                return BmcResult::Cex(Box::new(trace));
            }
            SolveResult::Unsat => {
                checked = Some(k);
                // Block this depth's bad permanently: helps the next depths.
                u.solver.add_clause(&[!bad]);
            }
            SolveResult::Canceled => {
                return BmcResult::Timeout {
                    depth_checked: checked,
                };
            }
        }
    }
    BmcResult::Clean {
        depth_checked: checked.expect("max_depth >= 0 always checks frame 0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use csl_hdl::{Design, Init};
    use std::time::Instant;

    /// Counter that reaches the bad value `target` after `target` cycles.
    fn counter_design(width: usize, target: u64) -> TransitionSystem {
        let mut d = Design::new("counter");
        let c = d.reg("c", width, Init::Zero);
        let nxt = d.add_const(&c.q(), 1);
        d.set_next(&c, nxt);
        let hit = d.eq_const(&c.q(), target);
        d.assert_always("no_hit", hit.not());
        TransitionSystem::new(d.finish(), false)
    }

    #[test]
    fn finds_counter_cex_at_exact_depth() {
        let ts = counter_design(4, 5);
        match bmc(&ts, 16, Budget::unlimited()) {
            BmcResult::Cex(t) => {
                assert_eq!(t.depth(), 6); // cycles 0..=5
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(&t);
                assert!(assumes_ok && bad, "cex must replay");
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn clean_when_target_unreachable() {
        // 3-bit counter wraps 0..7; target 5 reachable, but depth < 5 clean.
        let ts = counter_design(3, 5);
        match bmc(&ts, 4, Budget::unlimited()) {
            BmcResult::Clean { depth_checked } => assert_eq!(depth_checked, 4),
            other => panic!("expected clean, got {other:?}"),
        }
    }

    #[test]
    fn assumes_block_counterexamples() {
        // Input x must pulse for the counter to advance, but we assume !x:
        // the bad value is never reached.
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let c = d.reg("c", 3, Init::Zero);
        let inc = d.add_const(&c.q(), 1);
        let nxt = d.mux(x, &inc, &c.q());
        d.set_next(&c, nxt);
        let hit = d.eq_const(&c.q(), 2);
        d.assert_always("no2", hit.not());
        d.assume(x.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match bmc(&ts, 10, Budget::unlimited()) {
            BmcResult::Clean { .. } => {}
            other => panic!("expected clean, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_init_found_at_depth_zero() {
        // A symbolic register equal to 9 at cycle 0 violates the property.
        let mut d = Design::new("t");
        let r = d.reg("r", 4, Init::Symbolic);
        d.hold(&r);
        let hit = d.eq_const(&r.q(), 9);
        d.assert_always("no9", hit.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match bmc(&ts, 0, Budget::unlimited()) {
            BmcResult::Cex(t) => {
                assert_eq!(t.depth(), 1);
                let (ok, bad) = Sim::new(ts.aig()).replay(&t);
                assert!(ok && bad);
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }

    #[test]
    fn budget_timeout_reported() {
        let ts = counter_design(4, 9);
        let budget = Budget::until(Instant::now());
        match bmc(&ts, 16, budget) {
            BmcResult::Timeout { .. } => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn input_driven_cex_extracts_inputs() {
        // Bad iff input x is true at cycle 2 (tracked by a 2-bit timer).
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        let t = d.reg("t", 2, Init::Zero);
        let at2 = d.eq_const(&t.q(), 2);
        let nxt = d.add_const(&t.q(), 1);
        d.set_next(&t, nxt);
        let fire = d.and_bit(at2, x);
        d.assert_always("no_fire", fire.not());
        let ts = TransitionSystem::new(d.finish(), false);
        match bmc(&ts, 8, Budget::unlimited()) {
            BmcResult::Cex(tr) => {
                assert_eq!(tr.depth(), 3);
                assert_eq!(tr.input(2, 0), Some(true));
                let (ok, bad) = Sim::new(ts.aig()).replay(&tr);
                assert!(ok && bad);
            }
            other => panic!("expected cex, got {other:?}"),
        }
    }
}

//! Time-frame expansion: encoding netlist frames into CNF.
//!
//! The [`Unroller`] maintains one incremental SAT instance and a per-frame
//! map from netlist nodes to solver literals. Frame `t+1` latch literals
//! *alias* the frame-`t` encodings of their next-state functions, so the
//! transition relation costs no equality clauses. Initial-state handling is
//! configurable: with [`InitMode::Reset`] frame 0 respects latch init values
//! (BMC); with [`InitMode::Free`] frame-0 latches are unconstrained
//! (induction-step and Houdini-consecution queries).

use std::collections::HashMap;

use csl_hdl::{Bit, Node};
use csl_sat::{Budget, Lit, SolveResult, Solver};

use crate::trace::Trace;
use crate::ts::TransitionSystem;

/// Frame-0 treatment of latches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitMode {
    /// Latches start at their declared init value (symbolic ones free).
    Reset,
    /// All latches free: the query ranges over arbitrary states.
    Free,
}

/// Incremental multi-frame CNF encoder. See the module docs.
pub struct Unroller<'a> {
    ts: &'a TransitionSystem,
    pub solver: Solver,
    /// `frame_lits[t][node] = Some(lit)` once encoded.
    frame_lits: Vec<Vec<Option<Lit>>>,
    /// Frames whose assume bits have been asserted.
    assumes_added: usize,
    /// Cached per-frame "some bad fired" indicator literals.
    bad_any: HashMap<usize, Lit>,
    init_mode: InitMode,
    const_true: Lit,
}

impl<'a> Unroller<'a> {
    pub fn new(ts: &'a TransitionSystem, init_mode: InitMode) -> Unroller<'a> {
        let mut solver = Solver::new();
        let const_true = solver.new_var().positive();
        solver.add_clause(&[const_true]);
        let mut u = Unroller {
            ts,
            solver,
            frame_lits: Vec::new(),
            assumes_added: 0,
            bad_any: HashMap::new(),
            init_mode,
            const_true,
        };
        u.push_frame0();
        u
    }

    pub fn set_budget(&mut self, budget: Budget) {
        self.solver.set_budget(budget);
    }

    /// Number of frames currently encoded.
    pub fn num_frames(&self) -> usize {
        self.frame_lits.len()
    }

    fn fresh_map(&self) -> Vec<Option<Lit>> {
        vec![None; self.ts.aig().num_nodes()]
    }

    fn push_frame0(&mut self) {
        let mut map = self.fresh_map();
        for &li in self.ts.active_latches() {
            let latch = &self.ts.aig().latches()[li as usize];
            let v = self.solver.new_var().positive();
            map[latch.output.node() as usize] = Some(v);
            if self.init_mode == InitMode::Reset {
                match self.ts.latch_init(li) {
                    Some(true) => {
                        self.solver.add_clause(&[v]);
                    }
                    Some(false) => {
                        self.solver.add_clause(&[!v]);
                    }
                    None => {}
                }
            }
        }
        self.frame_lits.push(map);
    }

    /// Adds frame `num_frames()`: latch literals alias the previous frame's
    /// next-state encodings.
    pub fn push_frame(&mut self) {
        let prev = self.frame_lits.len() - 1;
        let mut nexts: Vec<(u32, Lit)> = Vec::with_capacity(self.ts.active_latches().len());
        for &li in self.ts.active_latches() {
            let next_bit = self.ts.aig().latches()[li as usize]
                .next
                .expect("unsealed latch");
            let l = self.lit_of(next_bit, prev);
            nexts.push((li, l));
        }
        let mut map = self.fresh_map();
        for (li, l) in nexts {
            let latch = &self.ts.aig().latches()[li as usize];
            map[latch.output.node() as usize] = Some(l);
        }
        self.frame_lits.push(map);
    }

    /// Ensures frames `0..=t` exist.
    pub fn ensure_frames(&mut self, t: usize) {
        while self.frame_lits.len() <= t {
            self.push_frame();
        }
    }

    /// Solver literal for bit `b` at frame `t`, encoding the cone on demand.
    ///
    /// # Panics
    /// Panics if `t` is not yet unrolled, or if `b` depends on a latch
    /// outside the cone of influence.
    pub fn lit_of(&mut self, b: Bit, t: usize) -> Lit {
        assert!(t < self.frame_lits.len(), "frame {t} not unrolled yet");
        // Iterative DFS over the combinational cone at frame t.
        let mut stack = vec![b.node()];
        while let Some(n) = stack.pop() {
            if self.frame_lits[t][n as usize].is_some() {
                continue;
            }
            let nb = Bit::from_packed(n << 1);
            match self.ts.aig().node(nb) {
                Node::Const => {
                    self.frame_lits[t][n as usize] = Some(!self.const_true);
                }
                Node::Input(_) => {
                    let v = self.solver.new_var().positive();
                    self.frame_lits[t][n as usize] = Some(v);
                }
                Node::Latch(li) => {
                    // A latch outside the cone of influence, referenced by
                    // an auxiliary query (e.g. a Houdini candidate). Its
                    // next-state function is not part of the encoded
                    // transition relation, so model it as unconstrained —
                    // except at frame 0 under Reset, where its declared
                    // init value still applies. Sound: candidates over
                    // such latches can only be *dropped* by consecution.
                    let v = self.solver.new_var().positive();
                    if t == 0 && self.init_mode == InitMode::Reset {
                        match self.ts.latch_init(li) {
                            Some(true) => {
                                self.solver.add_clause(&[v]);
                            }
                            Some(false) => {
                                self.solver.add_clause(&[!v]);
                            }
                            None => {}
                        }
                    }
                    self.frame_lits[t][n as usize] = Some(v);
                }
                Node::And(x, y) => {
                    let lx = self.frame_lits[t][x.node() as usize];
                    let ly = self.frame_lits[t][y.node() as usize];
                    match (lx, ly) {
                        (Some(lx), Some(ly)) => {
                            let lx = if x.is_complemented() { !lx } else { lx };
                            let ly = if y.is_complemented() { !ly } else { ly };
                            let v = self.solver.new_var().positive();
                            // v <-> lx & ly
                            self.solver.add_clause(&[!v, lx]);
                            self.solver.add_clause(&[!v, ly]);
                            self.solver.add_clause(&[v, !lx, !ly]);
                            self.frame_lits[t][n as usize] = Some(v);
                        }
                        _ => {
                            stack.push(n);
                            if lx.is_none() {
                                stack.push(x.node());
                            }
                            if ly.is_none() {
                                stack.push(y.node());
                            }
                        }
                    }
                }
            }
        }
        let raw = self.frame_lits[t][b.node() as usize].unwrap();
        if b.is_complemented() {
            !raw
        } else {
            raw
        }
    }

    /// Asserts all assume bits as unit clauses for frames `0..=t`.
    pub fn assert_assumes_through(&mut self, t: usize) {
        self.ensure_frames(t);
        while self.assumes_added <= t {
            let f = self.assumes_added;
            let assumes: Vec<Bit> = self.ts.aig().assumes().to_vec();
            for a in assumes {
                let l = self.lit_of(a, f);
                self.solver.add_clause(&[l]);
            }
            self.assumes_added += 1;
        }
    }

    /// A literal implying "some bad bit fired at frame `t`" (one-directional:
    /// asserting it as an assumption forces a bad bit true; its negation as a
    /// unit clause forces all bad bits false).
    pub fn bad_any_at(&mut self, t: usize) -> Lit {
        if let Some(&l) = self.bad_any.get(&t) {
            return l;
        }
        self.ensure_frames(t);
        let bads: Vec<Bit> = self.ts.aig().bads().iter().map(|b| b.bit).collect();
        let lits: Vec<Lit> = bads.iter().map(|&b| self.lit_of(b, t)).collect();
        let y = self.solver.new_var().positive();
        // y -> (b1 | b2 | ...)
        let mut clause = vec![!y];
        clause.extend(lits.iter().copied());
        self.solver.add_clause(&clause);
        // bi -> y (so !y blocks all bads)
        for &b in &lits {
            self.solver.add_clause(&[!b, y]);
        }
        self.bad_any.insert(t, y);
        y
    }

    /// Which bad bit is true at frame `t` in the current model.
    pub fn fired_bad_name(&mut self, t: usize) -> Option<String> {
        let bads: Vec<(String, Bit)> = self
            .ts
            .aig()
            .bads()
            .iter()
            .map(|b| (b.name.clone(), b.bit))
            .collect();
        for (name, bit) in bads {
            let l = self.lit_of(bit, t);
            if self.solver.value(l) == Some(true) {
                return Some(name);
            }
        }
        None
    }

    /// Extracts a trace of `depth` cycles from the current SAT model.
    pub fn extract_trace(&mut self, depth: usize, bad_name: String) -> Trace {
        let mut initial_latches = Vec::new();
        for &li in self.ts.active_latches() {
            let out = self.ts.aig().latches()[li as usize].output;
            let l = self.lit_of(out, 0);
            if let Some(v) = self.solver.value(l) {
                initial_latches.push((li, v));
            }
        }
        let mut inputs = Vec::with_capacity(depth);
        for t in 0..depth {
            let mut m = HashMap::new();
            for &ii in self.ts.active_inputs() {
                let out = self.ts.aig().inputs()[ii as usize].output;
                // Only read inputs the frame actually encoded.
                if self.frame_lits[t][out.node() as usize].is_some() {
                    let l = self.lit_of(out, t);
                    if let Some(v) = self.solver.value(l) {
                        m.insert(ii, v);
                    }
                }
            }
            inputs.push(m);
        }
        Trace {
            initial_latches,
            inputs,
            bad_name,
        }
    }

    /// Direct access to the solve call with assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }
}

//! Time-frame expansion: encoding netlist frames into CNF.
//!
//! The [`Unroller`] maintains one incremental SAT instance and a per-frame
//! map from netlist nodes to solver literals. Frame `t+1` latch literals
//! *alias* the frame-`t` encodings of their next-state functions, so the
//! transition relation costs no equality clauses. Initial-state handling is
//! configurable: with [`InitMode::Reset`] frame 0 respects latch init values
//! (BMC); with [`InitMode::Free`] frame-0 latches are unconstrained
//! (induction-step and Houdini-consecution queries).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use csl_hdl::{Bit, Node};
use csl_sat::{Budget, ExportPolicy, Lit, SolveResult, Solver};

use crate::exchange::{ClauseExporter, SharedClause, TimedLit};
use crate::trace::Trace;
use crate::ts::TransitionSystem;

/// Where a solver variable came from: bit `node` (non-complemented) at
/// `frame`, with `neg` recording whether the frame map stored a negated
/// literal for it (latch aliasing and the constant both do).
type Origin = (u32, u32, bool);

/// Reverse map solver-var → netlist origin, shared between the
/// [`Unroller`] (writer, between solves) and the solver export hook
/// (reader, at conflict boundaries). Both run on the lane's own thread,
/// so the mutex is never contended; it only satisfies the `Send` bound
/// the solver hook carries.
type OriginMap = Arc<Mutex<Vec<Option<Origin>>>>;

/// Frame-0 treatment of latches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InitMode {
    /// Latches start at their declared init value (symbolic ones free).
    Reset,
    /// All latches free: the query ranges over arbitrary states.
    Free,
}

/// Incremental multi-frame CNF encoder. See the module docs.
///
/// The unroller *owns* (a share of) its [`TransitionSystem`], so a session
/// can outlive the engine call that created it — the foundation of the
/// warm-start layer in [`crate::warm`], which parks live unrollers between
/// depth steps, budget escalations and repeated queries.
pub struct Unroller {
    ts: Arc<TransitionSystem>,
    pub solver: Solver,
    /// `frame_lits[t][node] = Some(lit)` once encoded.
    frame_lits: Vec<Vec<Option<Lit>>>,
    /// Frames whose assume bits have been asserted.
    assumes_added: usize,
    /// Mirror of `assumes_added` readable from the export hook.
    assume_frames: Arc<AtomicUsize>,
    /// Reverse var→origin map, maintained only while clause export is on.
    origins: Option<OriginMap>,
    /// Cached per-frame "some bad fired" indicator literals.
    bad_any: HashMap<usize, Lit>,
    init_mode: InitMode,
    const_true: Lit,
}

impl Unroller {
    pub fn new(ts: &Arc<TransitionSystem>, init_mode: InitMode) -> Unroller {
        let mut solver = Solver::new();
        let const_true = solver.new_var().positive();
        solver.add_clause(&[const_true]);
        let mut u = Unroller {
            ts: Arc::clone(ts),
            solver,
            frame_lits: Vec::new(),
            assumes_added: 0,
            assume_frames: Arc::new(AtomicUsize::new(0)),
            origins: None,
            bad_any: HashMap::new(),
            init_mode,
            const_true,
        };
        u.push_frame0();
        u
    }

    pub fn set_budget(&mut self, budget: Budget) {
        self.solver.set_budget(budget);
    }

    /// Records where a solver variable came from (first writer wins: an
    /// aliased latch output keeps its previous-frame identity, which
    /// denotes the same Boolean function of the run).
    fn record_origin(&self, frame: usize, node: u32, lit: Lit) {
        if let Some(map) = &self.origins {
            let mut map = map.lock().unwrap();
            let idx = lit.var().index();
            if map.len() <= idx {
                map.resize(idx + 1, None);
            }
            if map[idx].is_none() {
                map[idx] = Some((frame as u32, node, lit.is_negative()));
            }
        }
    }

    /// Turns on learnt-clause export: every clause the solver learns (and
    /// `policy` admits) whose literals all map back to netlist bits is
    /// translated to the shared vocabulary and published through
    /// `exporter` at the conflict boundary. Clauses touching auxiliary
    /// variables (bad-indicator gates, XOR helpers, activation literals)
    /// have no netlist meaning and are silently skipped — that filter is
    /// the mc-side soundness guard matching the solver-side contract of
    /// [`csl_sat::Solver::set_export_hook`].
    pub fn enable_clause_export(&mut self, exporter: ClauseExporter, policy: ExportPolicy) {
        let map: OriginMap = Arc::new(Mutex::new(Vec::new()));
        self.origins = Some(map.clone());
        // Backfill vars created before export was enabled: the constant
        // and everything already present in the frame maps.
        self.record_origin(0, 0, !self.const_true);
        for t in 0..self.frame_lits.len() {
            let entries: Vec<(usize, Lit)> = self.frame_lits[t]
                .iter()
                .enumerate()
                .filter_map(|(n, slot)| slot.map(|l| (n, l)))
                .collect();
            for (n, l) in entries {
                self.record_origin(t, n as u32, l);
            }
        }
        let origins = map;
        let assume_frames = self.assume_frames.clone();
        self.solver.set_export_hook(policy, move |lits, _lbd| {
            let map = origins.lock().unwrap();
            let mut out = Vec::with_capacity(lits.len());
            let mut max_frame = 0usize;
            for &l in lits {
                let Some(Some((f, n, neg))) = map.get(l.var().index()).copied() else {
                    return; // auxiliary variable: clause has no netlist meaning
                };
                let compl = l.is_negative() != neg;
                out.push(TimedLit {
                    frame: f as usize,
                    bit: Bit::from_packed((n << 1) | compl as u32),
                });
                max_frame = max_frame.max(f as usize);
            }
            drop(map);
            exporter.publish(SharedClause {
                lits: out,
                max_frame,
                assume_frames: assume_frames.load(Ordering::Relaxed),
                source: exporter.lane(),
            });
        });
    }

    /// Turns clause export back off, dropping the origin map and the
    /// solver-side hook. A session being *parked* (see [`crate::warm`])
    /// must call this: the hook captures a [`ClauseExporter`] bound to the
    /// bus of the check that is ending, and a clause learnt during a later
    /// check must not be published against the dead bus's horizons.
    pub fn disable_clause_export(&mut self) {
        self.origins = None;
        self.solver.clear_export_hook();
    }

    /// The transition system this session encodes.
    pub fn ts(&self) -> &Arc<TransitionSystem> {
        &self.ts
    }

    /// The session's frame-0 latch treatment.
    pub fn init_mode(&self) -> InitMode {
        self.init_mode
    }

    /// Whether `clause` may soundly be added to this instance right now:
    /// shared clauses are consequences of the reset-initialised unrolling
    /// with assumes asserted through their horizon, so the importer must
    /// be reset-initialised, at least as deeply unrolled, and at least as
    /// far assume-asserted.
    pub fn can_import(&self, clause: &SharedClause) -> bool {
        self.init_mode == InitMode::Reset
            && clause.max_frame < self.num_frames()
            && clause.assume_frames <= self.assumes_added
    }

    /// Adds a shared clause (re-encoding any cones it mentions on
    /// demand). Returns false — without touching the solver — when
    /// [`Unroller::can_import`] rejects it; callers keep such clauses
    /// pending and retry after unrolling deeper.
    pub fn import_clause(&mut self, clause: &SharedClause) -> bool {
        if !self.can_import(clause) {
            return false;
        }
        let lits: Vec<Lit> = clause
            .lits
            .iter()
            .map(|tl| self.lit_of(tl.bit, tl.frame))
            .collect();
        self.solver.add_clause(&lits);
        true
    }

    /// Asserts an invariant lemma bit as a unit at `frame` (sound for any
    /// init mode: a lemma holds in every reachable assume-satisfying
    /// state, and asserting it in a free-init instance is exactly the
    /// classic "strengthen the induction hypothesis" move).
    ///
    /// # Panics
    /// Panics if `frame` is not yet unrolled.
    pub fn assert_lemma_at(&mut self, bit: Bit, frame: usize) {
        let l = self.lit_of(bit, frame);
        self.solver.add_clause(&[l]);
    }

    /// Asserts an invariant *clause* — the disjunction of "bit `b` has
    /// value `v`" over `lits` — at `frame`. The clause-shaped companion
    /// of [`Unroller::assert_lemma_at`], used for PDR's exported frame
    /// clauses; the same soundness argument applies (the clause holds in
    /// every reachable assume-satisfying state).
    ///
    /// # Panics
    /// Panics if `frame` is not yet unrolled.
    pub fn assert_clause_at(&mut self, lits: &[(Bit, bool)], frame: usize) {
        let clause: Vec<Lit> = lits
            .iter()
            .map(|&(b, v)| {
                let l = self.lit_of(b, frame);
                if v {
                    l
                } else {
                    !l
                }
            })
            .collect();
        self.solver.add_clause(&clause);
    }

    /// Number of frames currently encoded.
    pub fn num_frames(&self) -> usize {
        self.frame_lits.len()
    }

    fn fresh_map(&self) -> Vec<Option<Lit>> {
        vec![None; self.ts.aig().num_nodes()]
    }

    fn push_frame0(&mut self) {
        let mut map = self.fresh_map();
        for &li in self.ts.active_latches() {
            let latch = &self.ts.aig().latches()[li as usize];
            let v = self.solver.new_var().positive();
            self.record_origin(0, latch.output.node(), v);
            map[latch.output.node() as usize] = Some(v);
            if self.init_mode == InitMode::Reset {
                match self.ts.latch_init(li) {
                    Some(true) => {
                        self.solver.add_clause(&[v]);
                    }
                    Some(false) => {
                        self.solver.add_clause(&[!v]);
                    }
                    None => {}
                }
            }
        }
        self.frame_lits.push(map);
    }

    /// Adds frame `num_frames()`: latch literals alias the previous frame's
    /// next-state encodings.
    pub fn push_frame(&mut self) {
        let prev = self.frame_lits.len() - 1;
        let ts = Arc::clone(&self.ts);
        let mut nexts: Vec<(u32, Lit)> = Vec::with_capacity(ts.active_latches().len());
        for &li in ts.active_latches() {
            let next_bit = ts.aig().latches()[li as usize]
                .next
                .expect("unsealed latch");
            let l = self.lit_of(next_bit, prev);
            nexts.push((li, l));
        }
        let t = self.frame_lits.len();
        let mut map = self.fresh_map();
        for (li, l) in nexts {
            let latch = &self.ts.aig().latches()[li as usize];
            // First-writer-wins: the aliased var keeps its frame-`prev`
            // identity, which denotes the same value.
            self.record_origin(t, latch.output.node(), l);
            map[latch.output.node() as usize] = Some(l);
        }
        self.frame_lits.push(map);
    }

    /// Ensures frames `0..=t` exist.
    pub fn ensure_frames(&mut self, t: usize) {
        while self.frame_lits.len() <= t {
            self.push_frame();
        }
    }

    /// Solver literal for bit `b` at frame `t`, encoding the cone on demand.
    ///
    /// # Panics
    /// Panics if `t` is not yet unrolled, or if `b` depends on a latch
    /// outside the cone of influence.
    pub fn lit_of(&mut self, b: Bit, t: usize) -> Lit {
        assert!(t < self.frame_lits.len(), "frame {t} not unrolled yet");
        // Iterative DFS over the combinational cone at frame t.
        let mut stack = vec![b.node()];
        while let Some(n) = stack.pop() {
            if self.frame_lits[t][n as usize].is_some() {
                continue;
            }
            let nb = Bit::from_packed(n << 1);
            match self.ts.aig().node(nb) {
                Node::Const => {
                    self.frame_lits[t][n as usize] = Some(!self.const_true);
                }
                Node::Input(_) => {
                    let v = self.solver.new_var().positive();
                    self.record_origin(t, n, v);
                    self.frame_lits[t][n as usize] = Some(v);
                }
                Node::Latch(li) => {
                    // A latch outside the cone of influence, referenced by
                    // an auxiliary query (e.g. a Houdini candidate). Its
                    // next-state function is not part of the encoded
                    // transition relation, so model it as unconstrained —
                    // except at frame 0 under Reset, where its declared
                    // init value still applies. Sound: candidates over
                    // such latches can only be *dropped* by consecution.
                    let v = self.solver.new_var().positive();
                    self.record_origin(t, n, v);
                    if t == 0 && self.init_mode == InitMode::Reset {
                        match self.ts.latch_init(li) {
                            Some(true) => {
                                self.solver.add_clause(&[v]);
                            }
                            Some(false) => {
                                self.solver.add_clause(&[!v]);
                            }
                            None => {}
                        }
                    }
                    self.frame_lits[t][n as usize] = Some(v);
                }
                Node::And(x, y) => {
                    let lx = self.frame_lits[t][x.node() as usize];
                    let ly = self.frame_lits[t][y.node() as usize];
                    match (lx, ly) {
                        (Some(lx), Some(ly)) => {
                            let lx = if x.is_complemented() { !lx } else { lx };
                            let ly = if y.is_complemented() { !ly } else { ly };
                            let v = self.solver.new_var().positive();
                            self.record_origin(t, n, v);
                            // v <-> lx & ly
                            self.solver.add_clause(&[!v, lx]);
                            self.solver.add_clause(&[!v, ly]);
                            self.solver.add_clause(&[v, !lx, !ly]);
                            self.frame_lits[t][n as usize] = Some(v);
                        }
                        _ => {
                            stack.push(n);
                            if lx.is_none() {
                                stack.push(x.node());
                            }
                            if ly.is_none() {
                                stack.push(y.node());
                            }
                        }
                    }
                }
            }
        }
        let raw = self.frame_lits[t][b.node() as usize].unwrap();
        if b.is_complemented() {
            !raw
        } else {
            raw
        }
    }

    /// Asserts all assume bits as unit clauses for frames `0..=t`.
    pub fn assert_assumes_through(&mut self, t: usize) {
        self.ensure_frames(t);
        while self.assumes_added <= t {
            let f = self.assumes_added;
            let assumes: Vec<Bit> = self.ts.aig().assumes().to_vec();
            for a in assumes {
                let l = self.lit_of(a, f);
                self.solver.add_clause(&[l]);
            }
            self.assumes_added += 1;
            self.assume_frames
                .store(self.assumes_added, Ordering::Relaxed);
        }
    }

    /// Number of frames whose assume bits have been asserted.
    pub fn assume_frames(&self) -> usize {
        self.assumes_added
    }

    /// A literal implying "some bad bit fired at frame `t`" (one-directional:
    /// asserting it as an assumption forces a bad bit true; its negation as a
    /// unit clause forces all bad bits false).
    pub fn bad_any_at(&mut self, t: usize) -> Lit {
        if let Some(&l) = self.bad_any.get(&t) {
            return l;
        }
        self.ensure_frames(t);
        let bads: Vec<Bit> = self.ts.aig().bads().iter().map(|b| b.bit).collect();
        let lits: Vec<Lit> = bads.iter().map(|&b| self.lit_of(b, t)).collect();
        let y = self.solver.new_var().positive();
        // y -> (b1 | b2 | ...)
        let mut clause = vec![!y];
        clause.extend(lits.iter().copied());
        self.solver.add_clause(&clause);
        // bi -> y (so !y blocks all bads)
        for &b in &lits {
            self.solver.add_clause(&[!b, y]);
        }
        self.bad_any.insert(t, y);
        y
    }

    /// Which bad bit is true at frame `t` in the current model.
    pub fn fired_bad_name(&mut self, t: usize) -> Option<String> {
        let bads: Vec<(String, Bit)> = self
            .ts
            .aig()
            .bads()
            .iter()
            .map(|b| (b.name.clone(), b.bit))
            .collect();
        for (name, bit) in bads {
            let l = self.lit_of(bit, t);
            if self.solver.value(l) == Some(true) {
                return Some(name);
            }
        }
        None
    }

    /// Extracts a trace of `depth` cycles from the current SAT model.
    pub fn extract_trace(&mut self, depth: usize, bad_name: String) -> Trace {
        let ts = Arc::clone(&self.ts);
        let mut initial_latches = Vec::new();
        for &li in ts.active_latches() {
            let out = ts.aig().latches()[li as usize].output;
            let l = self.lit_of(out, 0);
            if let Some(v) = self.solver.value(l) {
                initial_latches.push((li, v));
            }
        }
        let mut inputs = Vec::with_capacity(depth);
        for t in 0..depth {
            let mut m = HashMap::new();
            for &ii in ts.active_inputs() {
                let out = ts.aig().inputs()[ii as usize].output;
                // Only read inputs the frame actually encoded.
                if self.frame_lits[t][out.node() as usize].is_some() {
                    let l = self.lit_of(out, t);
                    if let Some(v) = self.solver.value(l) {
                        m.insert(ii, v);
                    }
                }
            }
            inputs.push(m);
        }
        Trace {
            initial_latches,
            inputs,
            bad_name,
        }
    }

    /// Direct access to the solve call with assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }
}

//! Two-valued concrete simulation of a netlist.
//!
//! The simulator serves three roles:
//! * cycle-accurate execution of processor generators for co-simulation
//!   against the ISA interpreter (testing the paper's "functional
//!   correctness" assumption, §5.4),
//! * replay of model-checker counterexamples, validating that every
//!   reported attack actually drives the design into the bad state,
//! * waveform extraction for human-readable attack listings.

use csl_hdl::{Aig, Bit, Init, Node};

use crate::trace::Trace;

/// Concrete state of all latches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimState {
    latch_values: Vec<bool>,
}

impl SimState {
    /// Reset state: declared init values, with symbolic latches taking the
    /// provided default (commonly driven from a counterexample's frame 0 or
    /// a random generator).
    pub fn reset_with(aig: &Aig, mut symbolic: impl FnMut(usize, &str) -> bool) -> SimState {
        let latch_values = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| match l.init {
                Init::Zero => false,
                Init::One => true,
                Init::Symbolic => symbolic(i, &l.name),
            })
            .collect();
        SimState { latch_values }
    }

    /// Reset state with all symbolic latches at 0.
    pub fn reset(aig: &Aig) -> SimState {
        SimState::reset_with(aig, |_, _| false)
    }

    /// Value of latch `i`.
    pub fn latch(&self, i: usize) -> bool {
        self.latch_values[i]
    }

    /// Overrides latch `i` (used when replaying counterexamples).
    pub fn set_latch(&mut self, i: usize, v: bool) {
        self.latch_values[i] = v;
    }

    pub fn num_latches(&self) -> usize {
        self.latch_values.len()
    }
}

/// Combinational values of every node for one cycle.
#[derive(Clone, Debug)]
pub struct CycleValues {
    values: Vec<bool>,
}

impl CycleValues {
    /// Value of an arbitrary bit this cycle.
    #[inline]
    pub fn bit(&self, b: Bit) -> bool {
        self.values[b.node() as usize] ^ b.is_complemented()
    }

    /// Value of a multi-bit word as an unsigned integer (LSB first).
    pub fn word(&self, bits: &[Bit]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((self.bit(b) as u64) << i))
    }
}

/// The simulator. Holds no mutable state besides scratch buffers; the
/// latch state lives in [`SimState`] so callers can fork/rewind executions.
pub struct Sim<'a> {
    aig: &'a Aig,
    scratch: Vec<bool>,
}

/// Result of one simulated cycle.
pub struct StepResult {
    /// Node values during the cycle (combinational snapshot).
    pub values: CycleValues,
    /// State after the clock edge.
    pub next: SimState,
    /// Indices of assume bits that were violated this cycle.
    pub violated_assumes: Vec<usize>,
    /// Names of bad bits that fired this cycle.
    pub fired_bads: Vec<String>,
}

impl<'a> Sim<'a> {
    pub fn new(aig: &'a Aig) -> Sim<'a> {
        Sim {
            aig,
            scratch: vec![false; aig.num_nodes()],
        }
    }

    /// Evaluates one cycle: combinational settle, then clock edge.
    ///
    /// `inputs(i, name)` supplies each primary input's value.
    pub fn step(
        &mut self,
        state: &SimState,
        mut inputs: impl FnMut(usize, &str) -> bool,
    ) -> StepResult {
        let aig = self.aig;
        let values = &mut self.scratch;
        // Nodes are created in topological order, so a single pass suffices.
        for idx in 0..aig.num_nodes() {
            let b = Bit::from_packed((idx as u32) << 1);
            values[idx] = match aig.node(b) {
                Node::Const => false,
                Node::Input(i) => inputs(i as usize, &aig.inputs()[i as usize].name),
                Node::Latch(l) => state.latch(l as usize),
                Node::And(x, y) => {
                    (values[x.node() as usize] ^ x.is_complemented())
                        && (values[y.node() as usize] ^ y.is_complemented())
                }
            };
        }
        let read = |b: Bit| values[b.node() as usize] ^ b.is_complemented();
        let next = SimState {
            latch_values: aig
                .latches()
                .iter()
                .map(|l| read(l.next.expect("unsealed latch")))
                .collect(),
        };
        let violated_assumes = aig
            .assumes()
            .iter()
            .enumerate()
            .filter(|(_, &a)| !read(a))
            .map(|(i, _)| i)
            .collect();
        let fired_bads = aig
            .bads()
            .iter()
            .filter(|b| read(b.bit))
            .map(|b| b.name.clone())
            .collect();
        StepResult {
            values: CycleValues {
                values: values.clone(),
            },
            next,
            violated_assumes,
            fired_bads,
        }
    }

    /// Replays a [`Trace`]: starts from the trace's initial latch values,
    /// drives its inputs, and reports what happened at each cycle.
    ///
    /// Returns `(all_assumes_held, bad_fired_at_last_cycle)` — a valid
    /// counterexample must yield `(true, true)`.
    pub fn replay(&mut self, trace: &Trace) -> (bool, bool) {
        let mut state = SimState::reset(self.aig);
        for (i, v) in &trace.initial_latches {
            state.set_latch(*i as usize, *v);
        }
        let mut assumes_ok = true;
        let mut bad_last = false;
        for cycle in 0..trace.depth() {
            let r = self.step(&state, |i, _| trace.input(cycle, i as u32).unwrap_or(false));
            assumes_ok &= r.violated_assumes.is_empty();
            bad_last = !r.fired_bads.is_empty();
            state = r.next;
        }
        (assumes_ok, bad_last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::Design;

    /// A 3-bit counter with wraparound and an `en` input.
    fn counter() -> Aig {
        let mut d = Design::new("counter");
        let en = d.input_bit("en");
        let c = d.reg("c", 3, Init::Zero);
        let inc = d.add_const(&c.q(), 1);
        let next = d.mux(en, &inc, &c.q());
        d.set_next(&c, next);
        let q = c.q();
        d.probe("c", &q);
        let is7 = d.eq_const(&c.q(), 7);
        d.assert_always("never7", is7.not());
        d.finish()
    }

    fn probe_word(aig: &Aig, name: &str) -> Vec<Bit> {
        aig.probes()
            .iter()
            .find(|p| p.name == name)
            .unwrap()
            .bits
            .clone()
    }

    #[test]
    fn counter_counts_when_enabled() {
        let aig = counter();
        let mut sim = Sim::new(&aig);
        let mut state = SimState::reset(&aig);
        let c = probe_word(&aig, "c");
        for expect in 0..7u64 {
            let r = sim.step(&state, |_, _| true);
            assert_eq!(r.values.word(&c), expect);
            assert!(r.fired_bads.is_empty());
            state = r.next;
        }
        // Cycle 7: counter reads 7, the assertion fires.
        let r = sim.step(&state, |_, _| true);
        assert_eq!(r.values.word(&c), 7);
        assert_eq!(r.fired_bads, vec!["never7".to_string()]);
    }

    #[test]
    fn counter_holds_when_disabled() {
        let aig = counter();
        let mut sim = Sim::new(&aig);
        let mut state = SimState::reset(&aig);
        for _ in 0..10 {
            let r = sim.step(&state, |_, _| false);
            state = r.next;
        }
        assert!(!state.latch(0) && !state.latch(1) && !state.latch(2));
    }

    #[test]
    fn symbolic_init_defaults() {
        let mut d = Design::new("t");
        let r = d.reg("r", 2, Init::Symbolic);
        d.hold(&r);
        let aig = d.finish();
        let s = SimState::reset_with(&aig, |i, _| i == 1);
        assert!(!s.latch(0));
        assert!(s.latch(1));
    }

    #[test]
    fn assume_violations_reported() {
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        d.assume(x);
        let aig = d.finish();
        let mut sim = Sim::new(&aig);
        let state = SimState::reset(&aig);
        let r = sim.step(&state, |_, _| false);
        assert_eq!(r.violated_assumes, vec![0]);
        let r = sim.step(&state, |_, _| true);
        assert!(r.violated_assumes.is_empty());
    }
}

//! Two-valued concrete simulation of a netlist.
//!
//! The simulator serves three roles:
//! * cycle-accurate execution of processor generators for co-simulation
//!   against the ISA interpreter (testing the paper's "functional
//!   correctness" assumption, §5.4),
//! * replay of model-checker counterexamples, validating that every
//!   reported attack actually drives the design into the bad state,
//! * waveform extraction for human-readable attack listings.
//!
//! Two evaluators share the vocabulary: the scalar [`Sim`] walks the AIG
//! with one `bool` per node, and [`BatchSim`] walks it with one `u64` per
//! node — 64 independent stimulus lanes evaluated in a single topological
//! pass. The batch form is the engine behind the differential-fuzzing
//! backend: one pass costs essentially the same as a scalar pass (the
//! AND/complement operations are word-wide), so fuzzing throughput in
//! trials/second scales with the lane count.

use csl_hdl::{Aig, Bit, Init, Node};

use crate::trace::Trace;

/// Concrete state of all latches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimState {
    latch_values: Vec<bool>,
}

impl SimState {
    /// Reset state: declared init values, with symbolic latches taking the
    /// provided default (commonly driven from a counterexample's frame 0 or
    /// a random generator).
    pub fn reset_with(aig: &Aig, mut symbolic: impl FnMut(usize, &str) -> bool) -> SimState {
        let latch_values = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| match l.init {
                Init::Zero => false,
                Init::One => true,
                Init::Symbolic => symbolic(i, &l.name),
            })
            .collect();
        SimState { latch_values }
    }

    /// Reset state with all symbolic latches at 0.
    pub fn reset(aig: &Aig) -> SimState {
        SimState::reset_with(aig, |_, _| false)
    }

    /// Value of latch `i`.
    pub fn latch(&self, i: usize) -> bool {
        self.latch_values[i]
    }

    /// Overrides latch `i` (used when replaying counterexamples).
    pub fn set_latch(&mut self, i: usize, v: bool) {
        self.latch_values[i] = v;
    }

    pub fn num_latches(&self) -> usize {
        self.latch_values.len()
    }
}

/// Combinational values of every node for one cycle.
#[derive(Clone, Debug)]
pub struct CycleValues {
    values: Vec<bool>,
}

impl CycleValues {
    /// Value of an arbitrary bit this cycle.
    #[inline]
    pub fn bit(&self, b: Bit) -> bool {
        self.values[b.node() as usize] ^ b.is_complemented()
    }

    /// Value of a multi-bit word as an unsigned integer (LSB first).
    pub fn word(&self, bits: &[Bit]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((self.bit(b) as u64) << i))
    }
}

/// The simulator. Holds no mutable state besides scratch buffers; the
/// latch state lives in [`SimState`] so callers can fork/rewind executions.
pub struct Sim<'a> {
    aig: &'a Aig,
    scratch: Vec<bool>,
}

/// Result of one simulated cycle.
pub struct StepResult {
    /// Node values during the cycle (combinational snapshot).
    pub values: CycleValues,
    /// State after the clock edge.
    pub next: SimState,
    /// Indices of assume bits that were violated this cycle.
    pub violated_assumes: Vec<usize>,
    /// Names of bad bits that fired this cycle.
    pub fired_bads: Vec<String>,
}

impl<'a> Sim<'a> {
    pub fn new(aig: &'a Aig) -> Sim<'a> {
        Sim {
            aig,
            scratch: vec![false; aig.num_nodes()],
        }
    }

    /// Evaluates one cycle: combinational settle, then clock edge.
    ///
    /// `inputs(i, name)` supplies each primary input's value.
    pub fn step(
        &mut self,
        state: &SimState,
        mut inputs: impl FnMut(usize, &str) -> bool,
    ) -> StepResult {
        let aig = self.aig;
        let values = &mut self.scratch;
        // Nodes are created in topological order, so a single pass suffices.
        for idx in 0..aig.num_nodes() {
            let b = Bit::from_packed((idx as u32) << 1);
            values[idx] = match aig.node(b) {
                Node::Const => false,
                Node::Input(i) => inputs(i as usize, &aig.inputs()[i as usize].name),
                Node::Latch(l) => state.latch(l as usize),
                Node::And(x, y) => {
                    (values[x.node() as usize] ^ x.is_complemented())
                        && (values[y.node() as usize] ^ y.is_complemented())
                }
            };
        }
        let read = |b: Bit| values[b.node() as usize] ^ b.is_complemented();
        let next = SimState {
            latch_values: aig
                .latches()
                .iter()
                .map(|l| read(l.next.expect("unsealed latch")))
                .collect(),
        };
        let violated_assumes = aig
            .assumes()
            .iter()
            .enumerate()
            .filter(|(_, &a)| !read(a))
            .map(|(i, _)| i)
            .collect();
        let fired_bads = aig
            .bads()
            .iter()
            .filter(|b| read(b.bit))
            .map(|b| b.name.clone())
            .collect();
        StepResult {
            values: CycleValues {
                values: values.clone(),
            },
            next,
            violated_assumes,
            fired_bads,
        }
    }

    /// Replays a [`Trace`]: starts from the trace's initial latch values,
    /// drives its inputs, and reports what happened at each cycle.
    ///
    /// Returns `(all_assumes_held, bad_fired_at_last_cycle)` — a valid
    /// counterexample must yield `(true, true)`.
    pub fn replay(&mut self, trace: &Trace) -> (bool, bool) {
        let mut state = SimState::reset(self.aig);
        for (i, v) in &trace.initial_latches {
            state.set_latch(*i as usize, *v);
        }
        let mut assumes_ok = true;
        let mut bad_last = false;
        for cycle in 0..trace.depth() {
            let r = self.step(&state, |i, _| trace.input(cycle, i as u32).unwrap_or(false));
            assumes_ok &= r.violated_assumes.is_empty();
            bad_last = !r.fired_bads.is_empty();
            state = r.next;
        }
        (assumes_ok, bad_last)
    }
}

/// Concrete state of all latches across [`BatchSim::LANES`] parallel
/// lanes: bit `l` of each word is lane `l`'s value of that latch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchState {
    latch_values: Vec<u64>,
}

impl BatchState {
    /// Reset state: declared init values broadcast to every lane, with
    /// symbolic latches taking the provided per-lane word (bit `l` =
    /// lane `l`'s initial value — commonly a per-trial stimulus).
    pub fn reset_with(aig: &Aig, mut symbolic: impl FnMut(usize, &str) -> u64) -> BatchState {
        let latch_values = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| match l.init {
                Init::Zero => 0,
                Init::One => !0,
                Init::Symbolic => symbolic(i, &l.name),
            })
            .collect();
        BatchState { latch_values }
    }

    /// Reset state with all symbolic latches at 0 in every lane.
    pub fn reset(aig: &Aig) -> BatchState {
        BatchState::reset_with(aig, |_, _| 0)
    }

    /// All lanes' values of latch `i`.
    pub fn latch(&self, i: usize) -> u64 {
        self.latch_values[i]
    }

    /// Overrides latch `i` in every lane at once.
    pub fn set_latch(&mut self, i: usize, v: u64) {
        self.latch_values[i] = v;
    }

    pub fn num_latches(&self) -> usize {
        self.latch_values.len()
    }

    /// Projects one lane out as a scalar [`SimState`] (used when a lane's
    /// trial becomes a counterexample and needs scalar replay).
    pub fn lane(&self, lane: usize) -> SimState {
        debug_assert!(lane < BatchSim::LANES);
        SimState {
            latch_values: self
                .latch_values
                .iter()
                .map(|&w| (w >> lane) & 1 == 1)
                .collect(),
        }
    }
}

/// Combinational values of every node for one cycle, across all lanes.
#[derive(Clone, Debug)]
pub struct BatchCycleValues {
    values: Vec<u64>,
}

impl BatchCycleValues {
    /// All lanes' values of an arbitrary bit this cycle.
    #[inline]
    pub fn bit(&self, b: Bit) -> u64 {
        let v = self.values[b.node() as usize];
        if b.is_complemented() {
            !v
        } else {
            v
        }
    }

    /// One lane's value of a bit.
    #[inline]
    pub fn lane_bit(&self, b: Bit, lane: usize) -> bool {
        (self.bit(b) >> lane) & 1 == 1
    }

    /// One lane's value of a multi-bit word (LSB first).
    pub fn word(&self, bits: &[Bit], lane: usize) -> u64 {
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | ((self.lane_bit(b, lane) as u64) << i)
        })
    }
}

/// Result of one batch-simulated cycle — the 64-lane mirror of
/// [`StepResult`]. Assume violations and fired bads come back as one
/// lane mask per declared assume/bad: bit `l` set means the assume was
/// violated (or the bad fired) in lane `l`.
pub struct BatchStep {
    /// Node values during the cycle (combinational snapshot, all lanes).
    pub values: BatchCycleValues,
    /// State after the clock edge.
    pub next: BatchState,
    /// Per-assume lane masks, parallel to `aig.assumes()`: bit `l` set =
    /// that assume was *violated* in lane `l` this cycle.
    pub violated_assumes: Vec<u64>,
    /// Per-bad lane masks, parallel to `aig.bads()`: bit `l` set = that
    /// bad bit fired in lane `l` this cycle.
    pub fired_bads: Vec<u64>,
}

impl BatchStep {
    /// Lanes in which *any* assume was violated this cycle.
    pub fn violated_lanes(&self) -> u64 {
        self.violated_assumes.iter().fold(0, |acc, &m| acc | m)
    }

    /// Lanes in which *any* bad bit fired this cycle.
    pub fn fired_lanes(&self) -> u64 {
        self.fired_bads.iter().fold(0, |acc, &m| acc | m)
    }
}

/// [`BatchStep`] without the combinational snapshot — what
/// [`BatchSim::step_masks`] returns for hot loops (the fuzzer) that
/// only consume the assume/bad masks and the next state, where cloning
/// every node's lane word each cycle would dominate the run.
pub struct BatchMasks {
    /// State after the clock edge.
    pub next: BatchState,
    /// Per-assume violation lane masks (see [`BatchStep`]).
    pub violated_assumes: Vec<u64>,
    /// Per-bad fired lane masks (see [`BatchStep`]).
    pub fired_bads: Vec<u64>,
}

impl BatchMasks {
    /// Lanes in which *any* assume was violated this cycle.
    pub fn violated_lanes(&self) -> u64 {
        self.violated_assumes.iter().fold(0, |acc, &m| acc | m)
    }

    /// Lanes in which *any* bad bit fired this cycle.
    pub fn fired_lanes(&self) -> u64 {
        self.fired_bads.iter().fold(0, |acc, &m| acc | m)
    }
}

/// Bit-parallel simulator: evaluates the AIG over `u64` words, one bit
/// per lane, so a single topological pass advances [`BatchSim::LANES`]
/// independent stimuli by one cycle. Lane `l` of every mask/word is an
/// execution that is exactly the scalar [`Sim`] run on lane `l`'s
/// stimulus (see the `batch_sim_equiv` property test).
pub struct BatchSim<'a> {
    aig: &'a Aig,
    scratch: Vec<u64>,
}

impl<'a> BatchSim<'a> {
    /// Stimulus lanes per pass (the word width).
    pub const LANES: usize = 64;

    pub fn new(aig: &'a Aig) -> BatchSim<'a> {
        BatchSim {
            aig,
            scratch: vec![0; aig.num_nodes()],
        }
    }

    /// Evaluates one cycle across all lanes: combinational settle, then
    /// clock edge. `inputs(i, name)` supplies each primary input's
    /// per-lane word (bit `l` = lane `l`'s value). The full per-node
    /// snapshot is cloned into the result; hot loops that only need the
    /// masks should call [`BatchSim::step_masks`].
    pub fn step(
        &mut self,
        state: &BatchState,
        inputs: impl FnMut(usize, &str) -> u64,
    ) -> BatchStep {
        let masks = self.step_masks(state, inputs);
        BatchStep {
            values: BatchCycleValues {
                values: self.scratch.clone(),
            },
            next: masks.next,
            violated_assumes: masks.violated_assumes,
            fired_bads: masks.fired_bads,
        }
    }

    /// [`BatchSim::step`] without materialising the combinational
    /// snapshot — no per-node allocation or copy, just the next state
    /// and the assume/bad lane masks.
    pub fn step_masks(
        &mut self,
        state: &BatchState,
        mut inputs: impl FnMut(usize, &str) -> u64,
    ) -> BatchMasks {
        let aig = self.aig;
        let values = &mut self.scratch;
        // Nodes are created in topological order, so a single pass
        // suffices (same invariant the scalar simulator relies on).
        for idx in 0..aig.num_nodes() {
            let b = Bit::from_packed((idx as u32) << 1);
            values[idx] = match aig.node(b) {
                Node::Const => 0,
                Node::Input(i) => inputs(i as usize, &aig.inputs()[i as usize].name),
                Node::Latch(l) => state.latch(l as usize),
                Node::And(x, y) => {
                    let vx = values[x.node() as usize];
                    let vy = values[y.node() as usize];
                    (if x.is_complemented() { !vx } else { vx })
                        & (if y.is_complemented() { !vy } else { vy })
                }
            };
        }
        let read = |b: Bit| {
            let v = values[b.node() as usize];
            if b.is_complemented() {
                !v
            } else {
                v
            }
        };
        let next = BatchState {
            latch_values: aig
                .latches()
                .iter()
                .map(|l| read(l.next.expect("unsealed latch")))
                .collect(),
        };
        let violated_assumes = aig.assumes().iter().map(|&a| !read(a)).collect();
        let fired_bads = aig.bads().iter().map(|b| read(b.bit)).collect();
        BatchMasks {
            next,
            violated_assumes,
            fired_bads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csl_hdl::Design;

    /// A 3-bit counter with wraparound and an `en` input.
    fn counter() -> Aig {
        let mut d = Design::new("counter");
        let en = d.input_bit("en");
        let c = d.reg("c", 3, Init::Zero);
        let inc = d.add_const(&c.q(), 1);
        let next = d.mux(en, &inc, &c.q());
        d.set_next(&c, next);
        let q = c.q();
        d.probe("c", &q);
        let is7 = d.eq_const(&c.q(), 7);
        d.assert_always("never7", is7.not());
        d.finish()
    }

    fn probe_word(aig: &Aig, name: &str) -> Vec<Bit> {
        aig.probes()
            .iter()
            .find(|p| p.name == name)
            .unwrap()
            .bits
            .clone()
    }

    #[test]
    fn counter_counts_when_enabled() {
        let aig = counter();
        let mut sim = Sim::new(&aig);
        let mut state = SimState::reset(&aig);
        let c = probe_word(&aig, "c");
        for expect in 0..7u64 {
            let r = sim.step(&state, |_, _| true);
            assert_eq!(r.values.word(&c), expect);
            assert!(r.fired_bads.is_empty());
            state = r.next;
        }
        // Cycle 7: counter reads 7, the assertion fires.
        let r = sim.step(&state, |_, _| true);
        assert_eq!(r.values.word(&c), 7);
        assert_eq!(r.fired_bads, vec!["never7".to_string()]);
    }

    #[test]
    fn counter_holds_when_disabled() {
        let aig = counter();
        let mut sim = Sim::new(&aig);
        let mut state = SimState::reset(&aig);
        for _ in 0..10 {
            let r = sim.step(&state, |_, _| false);
            state = r.next;
        }
        assert!(!state.latch(0) && !state.latch(1) && !state.latch(2));
    }

    #[test]
    fn symbolic_init_defaults() {
        let mut d = Design::new("t");
        let r = d.reg("r", 2, Init::Symbolic);
        d.hold(&r);
        let aig = d.finish();
        let s = SimState::reset_with(&aig, |i, _| i == 1);
        assert!(!s.latch(0));
        assert!(s.latch(1));
    }

    #[test]
    fn batch_counter_lanes_run_independently() {
        // Lane l enables the counter on cycles where bit l of the mask
        // pattern is set; after k cycles lane l reads popcount of enables.
        let aig = counter();
        let mut sim = BatchSim::new(&aig);
        let mut state = BatchState::reset(&aig);
        let c = probe_word(&aig, "c");
        // Lanes 0..6: lane l enables on every cycle < l (so lane l counts
        // to l over 6 cycles); lane 63 always enabled.
        for cycle in 0..6 {
            let mut en: u64 = 1 << 63;
            for lane in 0..7u64 {
                if cycle < lane {
                    en |= 1 << lane;
                }
            }
            let r = sim.step(&state, |_, _| en);
            state = r.next;
        }
        let r = sim.step(&state, |_, _| 0);
        for lane in 0..7usize {
            assert_eq!(r.values.word(&c, lane), lane.min(6) as u64, "lane {lane}");
        }
        assert_eq!(r.values.word(&c, 63), 6);
    }

    #[test]
    fn batch_bad_and_assume_masks_are_per_lane() {
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        d.assume(x);
        d.assert_always("x_high", x);
        let aig = d.finish();
        let mut sim = BatchSim::new(&aig);
        let state = BatchState::reset(&aig);
        let pattern: u64 = 0xDEAD_BEEF_0BAD_F00D;
        let r = sim.step(&state, |_, _| pattern);
        // The assume `x` and the assertion `x_high` are both violated
        // exactly in the lanes where the input is low.
        assert_eq!(r.violated_assumes, vec![!pattern]);
        assert_eq!(r.fired_bads, vec![!pattern]);
        assert_eq!(r.violated_lanes(), !pattern);
        assert_eq!(r.fired_lanes(), !pattern);
    }

    #[test]
    fn step_masks_agrees_with_step() {
        let aig = counter();
        let mut a = BatchSim::new(&aig);
        let mut b = BatchSim::new(&aig);
        let mut state = BatchState::reset(&aig);
        for cycle in 0..9 {
            let en: u64 = 0x5555_5555_5555_5555 ^ cycle;
            let full = a.step(&state, |_, _| en);
            let masks = b.step_masks(&state, |_, _| en);
            assert_eq!(masks.next, full.next);
            assert_eq!(masks.violated_assumes, full.violated_assumes);
            assert_eq!(masks.fired_bads, full.fired_bads);
            assert_eq!(masks.violated_lanes(), full.violated_lanes());
            assert_eq!(masks.fired_lanes(), full.fired_lanes());
            state = full.next;
        }
    }

    #[test]
    fn batch_symbolic_init_and_lane_projection() {
        let mut d = Design::new("t");
        let r = d.reg("r", 2, Init::Symbolic);
        let one = d.reg("one", 1, Init::One);
        d.hold(&r);
        d.hold(&one);
        let aig = d.finish();
        let s = BatchState::reset_with(&aig, |i, _| if i == 1 { 0b1010 } else { 0 });
        assert_eq!(s.latch(0), 0);
        assert_eq!(s.latch(1), 0b1010);
        assert_eq!(s.latch(2), !0, "Init::One broadcasts to every lane");
        let lane1 = s.lane(1);
        assert!(!lane1.latch(0) && lane1.latch(1) && lane1.latch(2));
        let lane2 = s.lane(2);
        assert!(!lane2.latch(1) && lane2.latch(2));
    }

    #[test]
    fn assume_violations_reported() {
        let mut d = Design::new("t");
        let x = d.input_bit("x");
        d.assume(x);
        let aig = d.finish();
        let mut sim = Sim::new(&aig);
        let state = SimState::reset(&aig);
        let r = sim.step(&state, |_, _| false);
        assert_eq!(r.violated_assumes, vec![0]);
        let r = sim.step(&state, |_, _| true);
        assert!(r.violated_assumes.is_empty());
    }
}

//! `csl-mc` — model-checking engines over `csl-hdl` netlists.
//!
//! This crate is the reproduction's stand-in for the commercial model
//! checker (Cadence JasperGold) used by the paper. It provides:
//!
//! * [`ts::TransitionSystem`] — cone-of-influence-reduced view of a netlist,
//! * [`sim`] — concrete simulation, counterexample replay and waveforms,
//!   including the 64-lane bit-parallel [`sim::BatchSim`] behind the
//!   differential-fuzzing backend,
//! * [`bmc`] — bounded model checking (attack finding; the paper's `Ht`
//!   engine role),
//! * [`kind`] — k-induction with optional unique-state constraints,
//! * [`houdini`] — invariant filtering over candidate relational
//!   invariants (the mechanism behind the LEAVE comparison scheme),
//! * [`pdr`] — IC3/property-directed reachability (unbounded proofs; the
//!   paper's `Mp`/`AM` engine role),
//! * [`engine::check_safety`] — the orchestrated pipeline producing the
//!   paper's three outcomes: attack counterexample, unbounded proof, or
//!   timeout,
//! * [`portfolio`] — the [`portfolio::Backend`] trait (API v2) and the
//!   thread-racing scheduler behind `check_safety`'s portfolio mode: all
//!   backends run concurrently, the first decisive lane cancels the rest
//!   through a stop flag shared via `csl_sat::Budget`, and every backend
//!   holds a handle on the exchange bus,
//! * [`exchange`] — the cross-lane lemma/clause [`Exchange`] bus: BMC
//!   publishes learnt clauses at conflict boundaries, Houdini streams
//!   survivor lemmas at its consecution fixpoint, and k-induction/PDR
//!   import both into their running solvers between SAT queries,
//! * [`lane`] — per-lane budget shaping ([`LanePlan`]): wall caps, BMC
//!   depth schedules and exchange opt-outs threaded through
//!   [`CheckOptions::lanes`] into both execution modes,
//! * [`prepare`] — instance preparation: the `csl_hdl::xform` reduction
//!   pipeline (cone-of-influence, constant sweep + cross-copy re-strash,
//!   dead-latch elimination, compaction) every engine runs behind, with
//!   [`prepare::PreparedInstance`] carrying the reconstruction that
//!   lifts counterexamples back to raw-netlist vocabulary.
//!
//! # Example: prove a saturating counter never overflows
//!
//! ```
//! use csl_hdl::{Design, Init};
//! use csl_mc::{check_safety, CheckOptions, SafetyCheck};
//!
//! let mut d = Design::new("sat");
//! let r = d.reg("r", 3, Init::Zero);
//! let at_max = d.eq_const(&r.q(), 3);
//! let inc = d.add_const(&r.q(), 1);
//! let nxt = d.mux(at_max, &r.q(), &inc);
//! d.set_next(&r, nxt);
//! let bad = d.eq_const(&r.q(), 7);
//! d.assert_always("no7", bad.not());
//!
//! let task = SafetyCheck { aig: d.finish(), candidates: vec![] };
//! let report = check_safety(&task, &CheckOptions::default());
//! assert!(report.verdict.is_proof());
//! ```

pub mod bmc;
pub mod cert;
pub mod engine;
pub mod exchange;
pub mod houdini;
pub mod kind;
pub mod lane;
pub mod pdr;
pub mod portfolio;
pub mod prepare;
pub mod sim;
pub mod trace;
pub mod ts;
pub mod unroll;
pub mod warm;

pub use bmc::{bmc, bmc_with, BmcResult, BmcSession, BusMemory};
pub use cert::{CertKind, Certificate};
pub use engine::{
    check_safety, CheckOptions, CheckReport, CoverageStats, ExecMode, FuzzStats,
    InconclusiveReason, ProofEngine, SafetyCheck, Verdict,
};
pub use exchange::{
    Exchange, ExchangeConfig, ExchangeItem, ExchangeStats, SharedClause, SharedContext,
    SharedFrontier, SharedInvariant, SharedLemma, SharedObligation, TimedLit,
};
pub use houdini::{houdini, houdini_with, Candidate, HoudiniOutcome, HoudiniResult};
pub use kind::{k_induction, k_induction_with, KindOptions, KindResult, KindSession};
pub use lane::{Lane, LaneBudget, LaneExchange, LanePlan};
pub use pdr::{pdr, pdr_with, pdr_with_stats, Cube, PdrOptions, PdrResult};
pub use portfolio::{
    race, Backend, BmcBackend, EngineOutcome, HoudiniBackend, KindBackend, LaneFactory, LaneResult,
    LaneSpec, PdrBackend, RaceReport,
};
pub use prepare::{prepare, PrepareConfig, PrepareStats, PreparedInstance};
pub use sim::{
    BatchCycleValues, BatchMasks, BatchSim, BatchState, BatchStep, CycleValues, Sim, SimState,
    StepResult,
};
pub use trace::Trace;
pub use ts::TransitionSystem;
pub use unroll::{InitMode, Unroller};
pub use warm::{LaneSolverStats, WarmPool, WarmScope, WarmSession};

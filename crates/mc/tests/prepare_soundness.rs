//! Instance preparation soundness (property tests over random AIGs).
//!
//! * **Verdict equivalence**: for every random design, `check_safety`
//!   with preparation on must reach the same verdict kind as with
//!   preparation off — the reduction may only make engines faster,
//!   never change what they conclude.
//! * **Trace back-mapping**: every attack found on the prepared
//!   (reduced) netlist is returned lifted through the
//!   [`csl_hdl::xform::Reconstruction`]; replaying the lifted trace on
//!   the *original* netlist must satisfy every assume and hit a bad
//!   state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csl_hdl::{Aig, Design, Init};
use csl_mc::{
    bmc, check_safety, prepare, BmcResult, CheckOptions, PrepareConfig, SafetyCheck, Sim,
    TransitionSystem, Verdict,
};
use csl_sat::Budget;

/// A random small sequential design exercising every pass: input-gated
/// counters (live logic), a latch provably stuck at reset (constant
/// sweep), a free-running counter nothing observes (cone-of-influence /
/// dead-latch), an optional assume, and a bad value that may or may not
/// be reachable.
fn random_design(seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new("rand");
    let width = rng.gen_range(3usize..=4);
    let x = d.input_bit("x");
    let y = d.input_bit("y");

    // Live: a advances on x.
    let a = d.reg("a", width, Init::Zero);
    let a_step = rng.gen_range(1u64..=2);
    let a_inc = d.add_const(&a.q(), a_step);
    let a_next = d.mux(x, &a_inc, &a.q());
    d.set_next(&a, a_next);

    // Stuck: holds its reset value forever, but gates some live logic so
    // the constant sweep has something to fold.
    let stuck = d.reg("stuck", 1, Init::Zero);
    d.hold(&stuck);
    let noise = d.and_bit(stuck.q().bit(0), y);

    // Dead: advances every cycle, observed by nothing.
    let dead = d.reg("dead", 5, Init::Zero);
    let dn = d.add_const(&dead.q(), 3);
    d.set_next(&dead, dn);

    if rng.gen_bool(0.5) {
        let imp = d.implies_bit(y, x);
        d.assume(imp);
    }
    let target = rng.gen_range(1u64..(1 << width));
    let hit = d.eq_const(&a.q(), target);
    let bad = d.or_bit(hit, noise);
    d.assert_always("a_hits", bad.not());
    if rng.gen_bool(0.5) {
        let deep = d.eq_const(&a.q(), (1 << width) - 1);
        d.assert_always("a_max", deep.not());
    }
    d.finish()
}

fn opts(prepare: PrepareConfig) -> CheckOptions {
    CheckOptions {
        // Generous engine set so every tiny instance decides (PDR closes
        // whatever k-induction leaves open) and the equivalence check
        // compares decided verdicts, not budget luck.
        bmc_depth: 24,
        kind_max_k: 4,
        use_pdr: true,
        pdr_max_frames: 64,
        prepare,
        ..CheckOptions::default()
    }
}

#[test]
fn prepared_verdicts_match_unprepared_across_random_designs() {
    let mut attacks = 0usize;
    let mut proofs = 0usize;
    for seed in 0..24u64 {
        let task = SafetyCheck {
            aig: random_design(seed),
            candidates: vec![],
        };
        let off = check_safety(&task, &opts(PrepareConfig::off()));
        let on = check_safety(&task, &opts(PrepareConfig::on()));
        assert_eq!(
            off.verdict.cell(),
            on.verdict.cell(),
            "seed {seed}: prepare off {:?} vs on {:?}\nnotes: {:?}",
            off.verdict,
            on.verdict,
            on.notes
        );
        assert!(
            !on.prepare.is_empty(),
            "seed {seed}: prepared run must record pass stats"
        );
        assert!(
            off.prepare.is_empty(),
            "seed {seed}: unprepared run must not record pass stats"
        );
        match on.verdict {
            Verdict::Attack(_) => attacks += 1,
            Verdict::Proof(_) => proofs += 1,
            ref other => panic!("seed {seed}: tiny instance failed to decide: {other:?}"),
        }
    }
    // The generator must have exercised both outcomes, or the
    // equivalence check proved nothing.
    assert!(attacks > 0, "no seed produced an attack");
    assert!(proofs > 0, "no seed produced a proof");
}

#[test]
fn lifted_attack_traces_replay_on_the_original_netlist() {
    let mut replayed = 0usize;
    for seed in 0..24u64 {
        let aig = random_design(seed);
        let task = SafetyCheck {
            aig: aig.clone(),
            candidates: vec![],
        };
        // Through check_safety: the report's trace is already lifted.
        let report = check_safety(&task, &opts(PrepareConfig::on()));
        if let Verdict::Attack(trace) = &report.verdict {
            let (assumes_ok, bad) = Sim::new(&aig).replay(trace);
            assert!(
                assumes_ok && bad,
                "seed {seed}: lifted trace must replay to a bad-state hit \
                 on the original netlist (assumes_ok={assumes_ok}, bad={bad})"
            );
            replayed += 1;
        }
    }
    assert!(replayed > 0, "no seed produced an attack to lift");
}

/// The same property at the pipeline level, without `check_safety` in
/// the middle: BMC on the reduced netlist, manual lift, replay on the
/// original.
#[test]
fn manual_lift_through_reconstruction_replays() {
    let mut checked = 0usize;
    for seed in 0..24u64 {
        let aig = random_design(seed);
        let task = SafetyCheck {
            aig: aig.clone(),
            candidates: vec![],
        };
        let prepared = prepare(&task, &PrepareConfig::on(), false);
        assert!(
            prepared.aig().num_latches() < aig.num_latches(),
            "seed {seed}: the dead/stuck latches must be removed"
        );
        let ts = TransitionSystem::shared(prepared.aig().clone(), false);
        if let BmcResult::Cex(trace) = bmc(&ts, 24, Budget::unlimited()) {
            // Sanity: the raw reduced-vocabulary trace replays on the
            // reduced netlist…
            let (ok_r, bad_r) = Sim::new(prepared.aig()).replay(&trace);
            assert!(ok_r && bad_r, "seed {seed}: reduced replay failed");
            // …and the lifted trace replays on the original.
            let lifted = trace.lifted(&prepared.reconstruction);
            let (ok, bad) = Sim::new(&aig).replay(&lifted);
            assert!(
                ok && bad,
                "seed {seed}: lifted replay failed (assumes_ok={ok}, bad={bad})"
            );
            assert_eq!(lifted.bad_name, trace.bad_name);
            checked += 1;
        }
    }
    assert!(checked > 0, "no seed produced a BMC counterexample");
}

/// Candidates ride through preparation as roots: Houdini-backed checks
/// (candidates present) stay verdict-equivalent too.
#[test]
fn prepared_verdicts_match_with_candidates() {
    let mut d = Design::new("lockstep");
    let a = d.reg("a", 3, Init::Zero);
    let b = d.reg("b", 3, Init::Zero);
    let an = d.add_const(&a.q(), 1);
    let bn = d.add_const(&b.q(), 1);
    d.set_next(&a, an);
    d.set_next(&b, bn);
    // A stuck distractor so the sweep fires.
    let stuck = d.reg("stuck", 1, Init::One);
    d.hold(&stuck);
    let eq = d.eq(&a.q(), &b.q());
    d.assert_always("equal", eq);
    let candidates = vec![csl_mc::Candidate {
        name: "a==b".into(),
        bit: eq,
    }];
    let task = SafetyCheck {
        aig: d.finish(),
        candidates,
    };
    let off = check_safety(&task, &opts(PrepareConfig::off()));
    let on = check_safety(&task, &opts(PrepareConfig::on()));
    assert_eq!(off.verdict.cell(), on.verdict.cell());
    assert!(on.verdict.is_proof(), "{:?}", on.verdict);
}

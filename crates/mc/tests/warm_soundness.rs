//! Warm-start soundness: resuming a parked solver session must be
//! indistinguishable — verdict for verdict — from solving fresh.
//!
//! Property tests over random small AIGs (the `exchange_soundness`
//! generator family):
//!
//! * **Progressive BMC**: one [`BmcSession`] driven through an
//!   escalating depth schedule must report, at every step, exactly what
//!   a fresh solver reports for that depth — same clean bound, same
//!   counterexample depth — and every counterexample must replay on the
//!   concrete simulator.
//! * **Pool round-trip**: a session parked in a [`WarmPool`] and checked
//!   out by fingerprint must continue to a deeper bound with the same
//!   verdict a cold solver reaches.
//! * **k-induction**: a [`KindSession`] resumed past its last `k` must
//!   agree with a fresh run at the final bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csl_hdl::{Aig, Design, Init};
use csl_mc::exchange::SharedContext;
use csl_mc::{
    bmc, k_induction, BmcResult, BmcSession, KindOptions, KindResult, KindSession, Lane, Sim,
    TransitionSystem, WarmPool,
};
use csl_sat::Budget;

/// Same structure as the exchange-soundness generator: input-gated
/// counters, a cross-register comparison, an optional assume, and a bad
/// value that is unreachable, late-reachable, or immediate depending on
/// the seed — so the corpus mixes Cex and Clean outcomes.
fn random_design(seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new("rand");
    let width = rng.gen_range(3usize..=4);
    let x = d.input_bit("x");
    let y = d.input_bit("y");

    let a = d.reg("a", width, Init::Zero);
    let b = d.reg("b", width, Init::Zero);
    let a_step = rng.gen_range(1u64..=2);
    let a_inc = d.add_const(&a.q(), a_step);
    let a_next = d.mux(x, &a_inc, &a.q());
    d.set_next(&a, a_next);
    let limit = rng.gen_range(2u64..(1 << width) - 1);
    let at_limit = d.eq_const(&b.q(), limit);
    let b_inc = d.add_const(&b.q(), 1);
    let b_next = d.mux(at_limit, &b.q(), &b_inc);
    d.set_next(&b, b_next);

    if rng.gen_bool(0.5) {
        let imp = d.implies_bit(y, x);
        d.assume(imp);
    }
    let target = rng.gen_range(1u64..(1 << width));
    let hit = d.eq_const(&a.q(), target);
    d.assert_always("a_hits", hit.not());
    if rng.gen_bool(0.5) {
        let eq = d.eq(&a.q(), &b.q());
        let marker = d.eq_const(&b.q(), limit);
        let both = d.and_bit(eq, marker);
        d.assert_always("agree_at_limit", both.not());
    }
    d.finish()
}

/// Two BMC results agree iff they classify the depth window identically;
/// counterexamples additionally must land at the same (shallowest)
/// depth and replay concretely.
fn assert_bmc_equiv(warm: &BmcResult, cold: &BmcResult, ts: &TransitionSystem, ctxt: String) {
    match (warm, cold) {
        (BmcResult::Cex(w), BmcResult::Cex(c)) => {
            assert_eq!(w.depth(), c.depth(), "{ctxt}: cex depths differ");
            for (label, t) in [("warm", w), ("cold", c)] {
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(t);
                assert!(assumes_ok && bad, "{ctxt}: {label} cex fails replay");
            }
        }
        (BmcResult::Clean { depth_checked: w }, BmcResult::Clean { depth_checked: c }) => {
            assert_eq!(w, c, "{ctxt}: clean bounds differ")
        }
        (w, c) => panic!("{ctxt}: verdicts diverge: warm {w:?} vs cold {c:?}"),
    }
}

#[test]
fn progressive_bmc_session_matches_fresh_solver_at_every_depth() {
    for seed in 0..16u64 {
        let ts = TransitionSystem::shared(random_design(seed), false);
        let mut session = BmcSession::new(&ts);
        for depth in [3usize, 6, 9, 14] {
            let warm = session.run_to(
                depth,
                Budget::unlimited(),
                &mut SharedContext::disabled(Lane::Bmc),
            );
            let cold = bmc(&ts, depth, Budget::unlimited());
            assert_bmc_equiv(&warm, &cold, &ts, format!("seed {seed} depth {depth}"));
            // A counterexample ends the lane; deeper re-queries of the
            // same session are not part of the contract.
            if matches!(warm, BmcResult::Cex(_)) {
                break;
            }
        }
    }
}

#[test]
fn pool_round_trip_continues_to_the_cold_verdict() {
    for seed in 0..16u64 {
        let ts = TransitionSystem::shared(random_design(seed), false);
        let pool = WarmPool::new();

        let mut session = BmcSession::new(&ts);
        let shallow = session.run_to(
            5,
            Budget::unlimited(),
            &mut SharedContext::disabled(Lane::Bmc),
        );
        if matches!(shallow, BmcResult::Cex(_)) {
            // Decisive before parking: nothing to warm-start.
            continue;
        }
        pool.park_bmc(session);

        let mut resumed = pool
            .checkout_bmc(ts.fingerprint())
            .expect("parked session must be found by fingerprint");
        let warm = resumed.run_to(
            13,
            Budget::unlimited(),
            &mut SharedContext::disabled(Lane::Bmc),
        );
        let cold = bmc(&ts, 13, Budget::unlimited());
        assert_bmc_equiv(&warm, &cold, &ts, format!("seed {seed} pool round-trip"));
    }
}

#[test]
fn warm_kind_session_agrees_with_fresh_run_at_the_final_bound() {
    for seed in 0..16u64 {
        let ts = TransitionSystem::shared(random_design(seed), false);
        let mut session = KindSession::new(&ts, false);
        let first = session.run_to(
            2,
            Budget::unlimited(),
            &mut SharedContext::disabled(Lane::KInduction),
        );
        // Only undecided sessions are ever parked and resumed (see the
        // crate::warm parking discipline), so the property to check is:
        // Unknown-at-2 then resumed-to-6 equals fresh-at-6.
        if !matches!(first, KindResult::Unknown { .. }) {
            continue;
        }
        let warm = session.run_to(
            6,
            Budget::unlimited(),
            &mut SharedContext::disabled(Lane::KInduction),
        );
        let cold = k_induction(
            &ts,
            KindOptions {
                max_k: 6,
                unique_states: false,
                budget: Budget::unlimited(),
            },
        );
        match (&warm, &cold) {
            (KindResult::Proof { k: wk }, KindResult::Proof { k: ck }) => {
                assert_eq!(wk, ck, "seed {seed}: proof depths differ")
            }
            (KindResult::Cex(w), KindResult::Cex(c)) => {
                assert_eq!(w.depth(), c.depth(), "seed {seed}: cex depths differ");
                let (assumes_ok, bad) = Sim::new(ts.aig()).replay(w);
                assert!(assumes_ok && bad, "seed {seed}: warm kind cex fails replay");
            }
            (KindResult::Unknown { max_k_tried: w }, KindResult::Unknown { max_k_tried: c }) => {
                assert_eq!(w, c, "seed {seed}: unknown bounds differ")
            }
            (w, c) => panic!("seed {seed}: verdicts diverge: warm {w:?} vs cold {c:?}"),
        }
    }
}

//! BatchSim ≡ Sim, lane for lane (property test over random AIGs).
//!
//! The 64-way bit-parallel simulator must be *indistinguishable* from 64
//! independent scalar simulations: for random netlists (random gate
//! structure, latches of every init kind, assumes, bads, probes) and
//! random per-lane stimulus (symbolic latch initialisation plus per-cycle
//! inputs), every lane of every batch artefact — node values, probe
//! words, assume-violation masks, fired-bad masks, next state — must
//! equal the scalar run on that lane's stimulus. This is the soundness
//! argument for the fuzzing backend: a leak observed in lane `l` is
//! exactly a leak the scalar simulator (and hence `Sim::replay`) would
//! observe.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csl_hdl::{Aig, Bit, Design, Init, Word};
use csl_mc::{BatchSim, BatchState, Sim, SimState};

/// A random sequential netlist: a pool of bits grown by random gates
/// over inputs and latch outputs, random next-state wiring, and
/// assumes/bads/probes drawn from the pool.
fn random_design(seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new("rand");
    let n_inputs = rng.gen_range(1..=3);
    let mut pool: Vec<Bit> = (0..n_inputs)
        .map(|i| d.input_bit(&format!("in{i}")))
        .collect();
    let n_regs = rng.gen_range(1..=3);
    let mut regs = Vec::new();
    for i in 0..n_regs {
        let width = rng.gen_range(1..=3);
        let init = match rng.gen_range(0..3) {
            0 => Init::Zero,
            1 => Init::One,
            _ => Init::Symbolic,
        };
        let r = d.reg(&format!("r{i}"), width, init);
        pool.extend(r.q().bits().iter().copied());
        regs.push(r);
    }
    for _ in 0..rng.gen_range(8..=24) {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let a = if rng.gen_bool(0.3) { a.not() } else { a };
        let b = if rng.gen_bool(0.3) { b.not() } else { b };
        let g = match rng.gen_range(0..4) {
            0 => d.and_bit(a, b),
            1 => d.or_bit(a, b),
            2 => d.xor_bit(a, b),
            _ => {
                let s = pool[rng.gen_range(0..pool.len())];
                d.mux_bit(s, a, b)
            }
        };
        pool.push(g);
    }
    for r in &regs {
        let next: Vec<Bit> = (0..r.width())
            .map(|_| {
                let b = pool[rng.gen_range(0..pool.len())];
                if rng.gen_bool(0.2) {
                    b.not()
                } else {
                    b
                }
            })
            .collect();
        d.set_next(r, Word::from_bits(next));
    }
    for i in 0..rng.gen_range(0..=2) {
        let b = pool[rng.gen_range(0..pool.len())];
        // Keep assumes loose so lanes differ in whether they violate.
        let _ = i;
        d.assume(b);
    }
    for i in 0..rng.gen_range(1..=3) {
        let b = pool[rng.gen_range(0..pool.len())];
        d.assert_always(&format!("bad{i}"), b);
    }
    let probe: Vec<Bit> = (0..rng.gen_range(1..=4))
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect();
    d.probe("window", &Word::from_bits(probe));
    d.finish()
}

#[test]
fn batch_sim_is_lane_for_lane_equivalent_to_scalar() {
    for seed in 0..40u64 {
        let aig = random_design(seed);
        let mut rng = StdRng::seed_from_u64(0xBA7C4 ^ seed);
        let cycles = rng.gen_range(3..=8);

        // Per-lane random symbolic initialisation, one u64 per latch.
        let latch_words: Vec<u64> = (0..aig.num_latches()).map(|_| rng.gen()).collect();
        // Per-cycle per-input random lane words.
        let input_words: Vec<Vec<u64>> = (0..cycles)
            .map(|_| (0..aig.num_inputs()).map(|_| rng.gen()).collect())
            .collect();

        let mut batch = BatchSim::new(&aig);
        let mut batch_state = BatchState::reset_with(&aig, |i, _| latch_words[i]);

        let mut scalar_sims: Vec<Sim> = (0..BatchSim::LANES).map(|_| Sim::new(&aig)).collect();
        let mut scalar_states: Vec<SimState> = (0..BatchSim::LANES)
            .map(|lane| SimState::reset_with(&aig, |i, _| (latch_words[i] >> lane) & 1 == 1))
            .collect();

        // The batch reset state must project to the scalar reset states
        // (covers Zero/One/Symbolic init handling).
        for (lane, scalar) in scalar_states.iter().enumerate() {
            assert_eq!(
                &batch_state.lane(lane),
                scalar,
                "seed {seed} lane {lane} init"
            );
        }

        let probe = &aig.probes()[0];
        for (cycle, cycle_inputs) in input_words.iter().enumerate() {
            let r = batch.step(&batch_state, |i, _| cycle_inputs[i]);
            for (lane, sim) in scalar_sims.iter_mut().enumerate() {
                let s = sim.step(&scalar_states[lane], |i, _| {
                    (cycle_inputs[i] >> lane) & 1 == 1
                });
                // Violated assumes: scalar indices vs batch per-assume
                // lane masks.
                let batch_violated: Vec<usize> = (0..aig.assumes().len())
                    .filter(|&ai| (r.violated_assumes[ai] >> lane) & 1 == 1)
                    .collect();
                assert_eq!(
                    batch_violated, s.violated_assumes,
                    "seed {seed} cycle {cycle} lane {lane}: assumes"
                );
                // Fired bads: scalar names vs batch per-bad lane masks.
                let batch_fired: Vec<String> = aig
                    .bads()
                    .iter()
                    .enumerate()
                    .filter(|(bi, _)| (r.fired_bads[*bi] >> lane) & 1 == 1)
                    .map(|(_, b)| b.name.clone())
                    .collect();
                assert_eq!(
                    batch_fired, s.fired_bads,
                    "seed {seed} cycle {cycle} lane {lane}: bads"
                );
                // Probe word extraction (bit extraction through the
                // complement-aware readers).
                assert_eq!(
                    r.values.word(&probe.bits, lane),
                    s.values.word(&probe.bits),
                    "seed {seed} cycle {cycle} lane {lane}: probe"
                );
                for (li, latch) in aig.latches().iter().enumerate() {
                    assert_eq!(
                        r.values.lane_bit(latch.output, lane),
                        s.values.bit(latch.output),
                        "seed {seed} cycle {cycle} lane {lane}: latch {li} output"
                    );
                }
                // Next state.
                assert_eq!(
                    r.next.lane(lane),
                    s.next,
                    "seed {seed} cycle {cycle} lane {lane}: next state"
                );
                scalar_states[lane] = s.next;
            }
            batch_state = r.next;
        }
    }
}

//! Exchange-bus soundness: everything a lane publishes must be implied
//! by the shared instance.
//!
//! * **Clauses** (property test over random small AIGs): every clause the
//!   BMC lane exports is checked against a *fresh* reset-initialised
//!   unrolling of the same netlist — asserting the clause's negation on
//!   top of `Init ∧ T ∧ assumes(0..h)` must be UNSAT. An exported clause
//!   that fails this check would let an importer prune real behaviour.
//! * **Lemmas**: every survivor Houdini streams must hold at every frame
//!   of every reachable assume-satisfying run — its negation at any
//!   reset-reachable frame must be UNSAT.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csl_hdl::{Aig, Design, Init};
use csl_mc::exchange::{Exchange, ExchangeConfig, ExchangeItem, SharedClause, SharedContext};
use csl_mc::{
    bmc_with, houdini_with, pdr_with, Candidate, InitMode, Lane, PdrOptions, PdrResult,
    SharedInvariant, SharedLemma, TransitionSystem, Unroller,
};
use csl_sat::{Budget, Lit, SolveResult};

/// A random small sequential design with enough structure to make the
/// SAT search conflict (and therefore learn clauses): input-gated
/// counters, a cross-register comparison, an assume, and an unreachable
/// (or late-reachable) bad value.
fn random_design(seed: u64) -> Aig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Design::new("rand");
    let width = rng.gen_range(3usize..=4);
    let x = d.input_bit("x");
    let y = d.input_bit("y");

    let a = d.reg("a", width, Init::Zero);
    let b = d.reg("b", width, Init::Zero);
    // a advances on x, by 1 or 2.
    let a_step = rng.gen_range(1u64..=2);
    let a_inc = d.add_const(&a.q(), a_step);
    let a_next = d.mux(x, &a_inc, &a.q());
    d.set_next(&a, a_next);
    // b advances every cycle unless saturated at a random limit.
    let limit = rng.gen_range(2u64..(1 << width) - 1);
    let at_limit = d.eq_const(&b.q(), limit);
    let b_inc = d.add_const(&b.q(), 1);
    let b_next = d.mux(at_limit, &b.q(), &b_inc);
    d.set_next(&b, b_next);

    // Optionally couple the inputs through an assume.
    if rng.gen_bool(0.5) {
        let imp = d.implies_bit(y, x);
        d.assume(imp);
    }
    // Bad: a hits a value it may or may not reach, and (sometimes) the
    // registers agreeing on a marker value.
    let target = rng.gen_range(1u64..(1 << width));
    let hit = d.eq_const(&a.q(), target);
    d.assert_always("a_hits", hit.not());
    if rng.gen_bool(0.5) {
        let eq = d.eq(&a.q(), &b.q());
        let marker = d.eq_const(&b.q(), limit);
        let both = d.and_bit(eq, marker);
        d.assert_always("agree_at_limit", both.not());
    }
    d.finish()
}

/// Drains every clause currently on `bus` (as seen by a fresh consumer
/// on a different lane).
fn drain_clauses(bus: &std::sync::Arc<Exchange>) -> Vec<SharedClause> {
    let mut consumer = SharedContext::attached(bus.clone(), Lane::Pdr, true, false);
    let mut clauses = Vec::new();
    loop {
        let batch = consumer.poll();
        if batch.is_empty() {
            break;
        }
        for item in batch {
            if let ExchangeItem::Clause(c) = &*item {
                clauses.push(c.clone());
            }
        }
    }
    clauses
}

/// Checks one exported clause against a fresh reset-init unrolling:
/// `Init ∧ T ∧ assumes(0..assume_frames-1) ∧ ¬clause` must be UNSAT.
fn assert_clause_implied(ts: &std::sync::Arc<TransitionSystem>, clause: &SharedClause, seed: u64) {
    let mut u = Unroller::new(ts, InitMode::Reset);
    if clause.assume_frames > 0 {
        u.assert_assumes_through(clause.assume_frames - 1);
    }
    u.ensure_frames(clause.max_frame);
    let negated: Vec<Lit> = clause
        .lits
        .iter()
        .map(|tl| !u.lit_of(tl.bit, tl.frame))
        .collect();
    assert_eq!(
        u.solve_with(&negated),
        SolveResult::Unsat,
        "seed {seed}: exported clause {clause:?} is not implied by the source instance"
    );
}

#[test]
fn exported_bmc_clauses_are_implied_by_the_source_instance() {
    let mut total_checked = 0usize;
    for seed in 0..12u64 {
        let aig = random_design(seed);
        let ts = TransitionSystem::shared(aig, false);
        let bus = Exchange::new(ExchangeConfig {
            enabled: true,
            // Generous filters so the probe sees plenty of exports.
            max_clause_len: 12,
            max_clause_lbd: 20,
            max_imports_per_poll: 256,
            capacity: 1 << 16,
            adaptive: false,
        });
        let mut ctx = SharedContext::attached(bus.clone(), Lane::Bmc, true, true);
        let _ = bmc_with(
            &ts,
            10,
            Budget::unlimited(),
            &mut ctx,
            &mut csl_mc::BusMemory::default(),
        );
        // Bound the per-seed verification work; implication checks are
        // individually cheap but the export stream can be long.
        for clause in drain_clauses(&bus).into_iter().take(64) {
            assert_clause_implied(&ts, &clause, seed);
            total_checked += 1;
        }
    }
    assert!(
        total_checked > 0,
        "the probe never exported a clause — the property test checked nothing"
    );
}

/// Lockstep counters with an equality candidate: the survivor Houdini
/// streams must hold at every reachable frame.
#[test]
fn streamed_houdini_lemmas_hold_on_all_reachable_frames() {
    let mut d = Design::new("lockstep");
    let a = d.reg("a", 3, Init::Zero);
    let b = d.reg("b", 3, Init::Zero);
    let an = d.add_const(&a.q(), 1);
    let bn = d.add_const(&b.q(), 1);
    d.set_next(&a, an);
    d.set_next(&b, bn);
    let eq = d.eq(&a.q(), &b.q());
    d.assert_always("equal", eq);
    let candidates = vec![Candidate {
        name: "a==b".into(),
        bit: eq,
    }];
    let ts = TransitionSystem::shared(d.finish(), false);

    let mut streamed: Vec<SharedLemma> = Vec::new();
    let mut stream = |_: usize, c: &Candidate| {
        streamed.push(SharedLemma {
            name: c.name.clone(),
            bit: c.bit,
            source: Lane::Houdini,
        });
    };
    let _ = houdini_with(&ts, &candidates, Budget::unlimited(), Some(&mut stream));
    assert_eq!(streamed.len(), 1, "the lockstep candidate must survive");

    let depth = 8;
    for lemma in &streamed {
        let mut u = Unroller::new(&ts, InitMode::Reset);
        u.assert_assumes_through(depth);
        for k in 0..=depth {
            let l = u.lit_of(lemma.bit, k);
            assert_eq!(
                u.solve_with(&[!l]),
                SolveResult::Unsat,
                "lemma `{}` violated at reachable frame {k}",
                lemma.name
            );
        }
    }
}

/// The shared PDR fixture: a counter that saturates at 2 with an
/// unreachable bad at 7 — plain k-induction fails on it, so a PDR proof
/// genuinely needs learned frame clauses.
fn saturating_counter_ts() -> std::sync::Arc<TransitionSystem> {
    let mut d = Design::new("sat");
    let r = d.reg("r", 3, Init::Zero);
    let at2 = d.eq_const(&r.q(), 2);
    let inc = d.add_const(&r.q(), 1);
    let nxt = d.mux(at2, &r.q(), &inc);
    d.set_next(&r, nxt);
    let bad = d.eq_const(&r.q(), 7);
    d.assert_always("never7", bad.not());
    TransitionSystem::shared(d.finish(), false)
}

/// A saturating counter whose proof needs PDR strengthening: at
/// convergence PDR must export its final inductive invariant onto the
/// bus, and every exported clause must hold at every reachable
/// assume-satisfying frame (its negation at any reset-reachable frame is
/// UNSAT).
#[test]
fn pdr_exports_its_final_invariant_and_it_holds_on_reachable_frames() {
    let ts = saturating_counter_ts();

    let bus = Exchange::new(ExchangeConfig::on());
    let mut ctx = SharedContext::attached(bus.clone(), Lane::Pdr, true, true);
    match pdr_with(&ts, PdrOptions::default(), &mut ctx) {
        PdrResult::Proof { .. } => {}
        other => panic!("expected proof, got {other:?}"),
    }
    assert!(ctx.exports() > 0, "convergence must publish the invariant");

    let mut consumer = SharedContext::attached(bus, Lane::Bmc, true, false);
    let mut invariants: Vec<SharedInvariant> = Vec::new();
    loop {
        let batch = consumer.poll();
        if batch.is_empty() {
            break;
        }
        for item in batch {
            if let ExchangeItem::Invariant(inv) = &*item {
                invariants.push(inv.clone());
            }
        }
    }
    assert!(!invariants.is_empty(), "no invariant clauses on the bus");

    let depth = 10;
    for inv in &invariants {
        let mut u = Unroller::new(&ts, InitMode::Reset);
        u.assert_assumes_through(depth);
        for k in 0..=depth {
            // ¬clause: every literal forced to its complementary value.
            let negated: Vec<Lit> = inv
                .lits
                .iter()
                .map(|&(b, v)| {
                    let l = u.lit_of(b, k);
                    if v {
                        !l
                    } else {
                        l
                    }
                })
                .collect();
            assert_eq!(
                u.solve_with(&negated),
                SolveResult::Unsat,
                "invariant clause `{}` violated at reachable frame {k}",
                inv.name
            );
        }
    }
}

/// Importing PDR's invariant clauses must not change a BMC verdict (the
/// clauses only exclude unreachable states) — and the importer's traffic
/// counter must see them.
#[test]
fn bmc_imports_pdr_invariants_without_verdict_change() {
    let ts = saturating_counter_ts();

    let bus = Exchange::new(ExchangeConfig::on());
    let mut pdr_ctx = SharedContext::attached(bus.clone(), Lane::Pdr, false, true);
    match pdr_with(&ts, PdrOptions::default(), &mut pdr_ctx) {
        PdrResult::Proof { .. } => {}
        other => panic!("expected proof, got {other:?}"),
    }
    let mut bmc_ctx = SharedContext::attached(bus, Lane::Bmc, true, false);
    let result = bmc_with(
        &ts,
        10,
        Budget::unlimited(),
        &mut bmc_ctx,
        &mut csl_mc::BusMemory::default(),
    );
    assert!(
        matches!(result, csl_mc::BmcResult::Clean { depth_checked: 10 }),
        "{result:?}"
    );
    assert!(
        bmc_ctx.imports() > 0,
        "bmc must count the imported invariant clauses"
    );
}

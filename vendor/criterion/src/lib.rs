//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset the workspace benches use — `Criterion`,
//! `bench_function`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! and `black_box` — with straightforward wall-clock measurement (median of
//! `sample_size` samples, each auto-calibrated to run ≥ ~5 ms) instead of
//! criterion's full statistical machinery. Good enough to spot order-of-
//! magnitude regressions in the substrate layers; not a statistics suite.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark driver. Collects timing samples and prints one line per
/// benchmark: median per-iteration time and iterations per second.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark (criterion's builder method).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // Calibration pass: find an iteration count that runs long enough
        // for the clock to resolve, then reuse it for every sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed / iters as u32);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let per_sec = if median.as_nanos() == 0 {
            f64::INFINITY
        } else {
            1e9 / median.as_nanos() as f64
        };
        println!("bench {name:<40} {median:>12.2?}/iter {per_sec:>14.1} iter/s ({iters} iters x {} samples)", self.sample_size);
        self
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }
}

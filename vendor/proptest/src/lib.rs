//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace tests use: the [`proptest!`] macro
//! (with an optional `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()` for integer and bool inputs, integer
//! `Range` strategies, and `prop::collection::vec`. Cases are generated
//! from a deterministic RNG seeded by the test's module path + name, so
//! failures reproduce exactly on re-run.
//!
//! Deliberately missing versus real proptest: shrinking (a failing case is
//! reported as-is), persistence files, `#[proptest]` attribute macros, and
//! the combinator zoo (`prop_oneof`, `.prop_map`, …). Grow this file if a
//! test needs more.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (`cases` is the only knob implemented).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (what `prop_assert*` returns early with).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies; deterministic per test.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from a stable hash of the test's identifier so each test gets
    /// an independent but reproducible stream.
    pub fn deterministic(test_id: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A value generator. Unlike real proptest there is no value tree /
/// shrinking: `sample` yields the final value directly.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs in one import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// The `proptest!` block macro: each `fn name(x in STRATEGY, ...)` becomes
/// a `#[test]` (the attribute is written by the user inside the block, as
/// in real proptest) that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", ")
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn range_strategy_in_bounds(w in 1usize..12) {
            prop_assert!((1..12).contains(&w));
        }

        #[test]
        fn vec_strategy_has_len(vals in prop::collection::vec(any::<u64>(), 8)) {
            prop_assert_eq!(vals.len(), 8);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in any::<u8>()) {
                    prop_assert!(false, "forced failure, x={}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property should fail");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("forced failure"), "{msg}");
        assert!(msg.contains("inputs:"), "{msg}");
    }
}

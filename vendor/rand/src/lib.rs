//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for the randomized tests and fuzzers
//! here, and fully deterministic for a given seed.
//!
//! Not implemented (because nothing here needs it): distributions beyond
//! uniform ints/bool, `thread_rng`, OS entropy, fill of non-byte slices.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator (matches `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme the
    /// real `rand` uses for its `seed_from_u64` default).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's `StdRng`;
    /// same constructor surface, different — but unspecified anyway — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut st = 0x6A09_E667_F3BC_C909;
                for v in &mut s {
                    *v = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u32..=3);
            assert!((1..=3).contains(&w));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rngcore_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0usize..4);
        assert!(v < 4);
    }
}

//! A tour of the verification service: start a `csl-serve` daemon
//! in-process, submit the smoke campaign over the socket, stream
//! per-cell updates, then resubmit to show in-memory dedup.
//!
//! ```sh
//! cargo run --release --example serve_client
//! ```

use std::time::Duration;

use contract_shadow_logic::prelude::*;
use contract_shadow_logic::serve;

fn main() -> std::io::Result<()> {
    // MUST run before anything else: the daemon's workers are re-execs
    // of this very binary, flagged with `--csl-serve-worker`.
    serve::serve_worker_if_flagged();

    // An ephemeral loopback port, two worker processes, and a journal —
    // kill this example mid-campaign and rerun it: completed cells
    // come back from the journal instead of re-solving.
    let journal = std::env::temp_dir().join("csl-serve-example.journal");
    let daemon = serve::Daemon::start(serve::DaemonConfig {
        workers: 2,
        journal: Some(journal.clone()),
        ..serve::DaemonConfig::default()
    })?;
    println!("daemon listening on {}", daemon.addr());

    // Every scheme on the single-cycle design under sandboxing.
    let cells: Vec<CellSpec> = Scheme::ALL
        .into_iter()
        .map(|scheme| CellSpec::new(scheme, DesignKind::SingleCycle, Contract::Sandboxing))
        .collect();
    let options = ServeOptions {
        budget: Duration::from_secs(10),
        bmc_depth: 4,
        ..ServeOptions::default()
    };

    let mut client = Client::connect(&daemon.addr())?;
    let job = client.submit("example", &cells, &options)?;
    println!("job {job} accepted ({} cells)", cells.len());
    let done = client.wait_done(job)?;
    for update in &done.updates {
        println!(
            "  cell {} [{}] {:<10} {}",
            update.index,
            update.source.name(),
            update.report.cell(),
            update.report.label(),
        );
    }
    print!("{}", done.campaign.render_table());
    println!(
        "solved {} / dedup {} / journal {} / crashes {}",
        done.stats.solved, done.stats.dedup_hits, done.stats.journal_hits, done.stats.crashes
    );

    // The identical campaign again: decided cells dedup against this
    // session's results without touching a worker (timeouts/unknowns
    // re-solve, matching the report-cache policy).
    let rerun = client.run("example-rerun", &cells, &options)?;
    println!(
        "rerun: solved {} / dedup {} (decided cells are never re-solved)",
        rerun.stats.solved, rerun.stats.dedup_hits
    );

    client.shutdown()?;
    daemon.join();
    let _ = std::fs::remove_file(journal);
    Ok(())
}

//! The §7.1.4 experiment: iterative attack discovery on the BOOM stand-in.
//!
//! The model checker is not told where speculation comes from. It first
//! finds an attack exploiting *misaligned-access* exceptions; we exclude
//! those programs and it finds an *illegal-access* exception attack; we
//! exclude those too and it falls back to classic *branch misprediction*.
//! A UPEC-style scheme — whose user fixed the speculation source to branch
//! misprediction — is blind to the first two.
//!
//! ```text
//! cargo run --release --example spectre_hunt
//! ```

use std::time::Duration;

use contract_shadow_logic::prelude::*;

fn hunt(excludes: Vec<ExcludeRule>, scheme: Scheme) -> Report {
    Verifier::new()
        .design(DesignKind::BigOoo)
        .contract(Contract::Sandboxing)
        .scheme(scheme)
        .excludes(&excludes)
        .wall(Duration::from_secs(300))
        .bmc_depth(16)
        .attack_only(true)
        .query()
        .expect("design and contract are set")
        .run()
}

fn describe(stage: &str, report: &Report) {
    match &report.verdict {
        Verdict::Attack(trace) => println!(
            "{stage}: ATTACK in {:.1}s, {} cycles (bad `{}`)",
            report.elapsed.as_secs_f64(),
            trace.depth(),
            trace.bad_name
        ),
        other => println!(
            "{stage}: {} in {:.1}s",
            other.cell(),
            report.elapsed.as_secs_f64()
        ),
    }
}

fn main() {
    println!("== Contract Shadow Logic on BigOoO (BOOM stand-in) ==");
    let r1 = hunt(vec![], Scheme::Shadow);
    describe("round 1 (no exclusions)      ", &r1);

    let r2 = hunt(vec![ExcludeRule::MisalignedAccesses], Scheme::Shadow);
    describe("round 2 (no misaligned)      ", &r2);

    let r3 = hunt(
        vec![
            ExcludeRule::MisalignedAccesses,
            ExcludeRule::IllegalAccesses,
        ],
        Scheme::Shadow,
    );
    describe("round 3 (no exceptions)      ", &r3);

    let r4 = hunt(
        vec![
            ExcludeRule::MisalignedAccesses,
            ExcludeRule::IllegalAccesses,
            ExcludeRule::TakenBranches,
        ],
        Scheme::Shadow,
    );
    describe("round 4 (all sources removed)", &r4);

    println!();
    println!("== UPEC-style scheme (speculation source fixed to branches) ==");
    let u = hunt(vec![], Scheme::Upec);
    describe("UPEC round 1                 ", &u);
    println!(
        "note: UPEC's attack (if any) exploits branch misprediction only; \
         the exception attacks of rounds 1-2 are invisible to it."
    );
}

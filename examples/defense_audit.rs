//! The §7.2 experiment: audit the five defence mechanisms on SimpleOoO
//! under both contracts — the same shadow logic is reused unchanged across
//! all of them (the paper's reusability claim).
//!
//! Expected shape (paper Table 3): `Delay*` secure under both contracts;
//! `NoFwd*` secure for sandboxing but attackable under constant-time
//! (transient loads can dereference architecturally-present secrets);
//! `DoM` attackable under both (speculative interference).
//!
//! ```text
//! cargo run --release --example defense_audit [budget_secs]
//! ```

use std::time::Duration;

use contract_shadow_logic::prelude::*;

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("per-task budget: {budget}s (pass a number to change)\n");
    println!(
        "{:20} {:14} {:8} {:>8}  note",
        "defence", "contract", "verdict", "time"
    );
    for defense in Defense::TABLE3 {
        for contract in Contract::ALL {
            let report = Verifier::new()
                .design(DesignKind::SimpleOoo(defense))
                .contract(contract)
                .scheme(Scheme::Shadow)
                .wall(Duration::from_secs(budget))
                .bmc_depth(14)
                .query()
                .expect("design and contract are set")
                .run();
            let expected = if defense.expected_secure(contract == Contract::ConstantTime) {
                "expect PROOF"
            } else {
                "expect CEX"
            };
            println!(
                "{:20} {:14} {:8} {:>7.1}s  {}",
                defense.name(),
                contract.name(),
                report.cell(),
                report.elapsed.as_secs_f64(),
                expected
            );
        }
    }
}

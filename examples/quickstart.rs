//! Quickstart: find a Spectre-style attack on an insecure out-of-order
//! core, then prove a defended configuration secure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use contract_shadow_logic::prelude::*;

fn main() {
    // ---- 1. hunt: insecure SimpleOoO vs the sandboxing contract ---------
    println!("== attack hunt: SimpleOoO (no defence), sandboxing contract ==");
    let query = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .wall(Duration::from_secs(120))
        .bmc_depth(16)
        .attack_only(true)
        .query()
        .expect("design and contract are set");
    let report = query.run();
    match &report.verdict {
        Verdict::Attack(trace) => {
            println!(
                "attack found in {:.2}s ({} cycles):",
                report.elapsed.as_secs_f64(),
                trace.depth()
            );
            // Render the counterexample waveform over the design's probes —
            // the concrete program and secret assignment are in the trace.
            // Traces come back in raw-netlist vocabulary (preparation is
            // transparent), so render on the raw instance.
            println!("{}", trace.render(&query.raw_instance().aig));
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // ---- 2. prove: the Delay-spectre defence (SimpleOoO-S) --------------
    println!("== proof: SimpleOoO-S (Delay-spectre), sandboxing contract ==");
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::DelaySpectre))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .wall(Duration::from_secs(600))
        .bmc_depth(10)
        .query()
        .expect("design and contract are set")
        .run();
    match &report.verdict {
        Verdict::Proof(engine) => println!(
            "unbounded proof in {:.2}s via {engine:?}",
            report.elapsed.as_secs_f64()
        ),
        other => println!("verdict: {other:?} (notes: {:?})", report.notes),
    }
}

//! Contract synthesis end to end: infer the strongest sound leakage
//! contract for the in-order pipeline with the CEGIS driver, printing
//! the refutation path and the final lattice position.
//!
//! ```text
//! cargo run --release --example synthesize
//! ```

use std::time::Duration;

use contract_shadow_logic::prelude::*;

fn main() {
    println!("== CEGIS contract synthesis: InOrder(Sodor) ==");
    println!(
        "grammar: {} observation atoms, lattice ordered by inclusion",
        ObsAtom::ALL.len()
    );
    println!();

    let synth = Synthesizer::new().verifier(
        Verifier::new()
            .budget(Budget::wall(Duration::from_secs(120)))
            .bmc_depth(12),
    );
    let result = synth.synthesize(DesignKind::InOrder);

    println!("refutation path (each attack forces one atom in):");
    for (set, atom) in result.refutation_path() {
        println!("  obs:{:<24} refuted  -> add {}", set.encode(), atom.name());
    }
    println!();
    println!("{}", result.render());

    match result.outcome {
        SynthOutcome::Sound => {
            let ct = Contract::constant_time_set();
            let pos = if result.contract == ct {
                "equal to".to_string()
            } else if result.contract.is_subset(ct) {
                format!(
                    "strictly below (observes {} of its {} atoms)",
                    result.contract.len(),
                    ct.len()
                )
            } else {
                "incomparable with".to_string()
            };
            println!(
                "synthesized contract `{}` is {} the hand-written constant-time contract",
                result.synthesized().name(),
                pos
            );
            println!(
                "minimality {}: necessary atoms: {}",
                if result.minimal_confirmed {
                    "confirmed"
                } else {
                    "not fully confirmed"
                },
                result
                    .necessary
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        SynthOutcome::NoSoundContract => {
            println!(
                "no sound contract exists: the last counterexample's retirement \
                 streams agree on every atom (a transient leak)"
            );
        }
        SynthOutcome::Inconclusive => {
            println!("inconclusive under this budget; raise it and re-run");
        }
    }
}

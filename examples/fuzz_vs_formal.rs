//! Fuzzing vs formal verification — the paper's §9 contrast between
//! model checking and fuzz-testing schemes (SpecDoctor, Revizor, …),
//! measured on the same leakage oracle.
//!
//! Both flows check the identical instrumented netlist: the fuzzer
//! simulates random program/secret pairs until the `no_leakage` assertion
//! fires; the model checker searches the whole program space symbolically.
//! On an insecure design both find the leak; on a secure design the fuzzer
//! can only ever say "no leak in N trials" while the formal flow can keep
//! pushing toward a proof.
//!
//! ```text
//! cargo run --release --example fuzz_vs_formal
//! ```

use std::time::{Duration, Instant};

use contract_shadow_logic::core::{fuzz_design, FuzzOptions, FuzzOutcome};
use contract_shadow_logic::prelude::*;

fn main() {
    let insecure = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    let secure = InstanceConfig::new(
        DesignKind::SimpleOoo(Defense::DelaySpectre),
        Contract::Sandboxing,
    );
    let formal = |defense: Defense, budget: u64, depth: usize| {
        Verifier::new()
            .design(DesignKind::SimpleOoo(defense))
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Shadow)
            .wall(Duration::from_secs(budget))
            .bmc_depth(depth)
            .attack_only(true)
            .query()
            .expect("design and contract are set")
            .run()
    };

    println!("== insecure SimpleOoO, sandboxing ==");
    let t = Instant::now();
    match fuzz_design(&insecure, &FuzzOptions::default()) {
        FuzzOutcome::Leak(f) => println!(
            "fuzzer:  leak after {} trials in {:.2}s (cycle {})",
            f.trials,
            t.elapsed().as_secs_f64(),
            f.cycle
        ),
        FuzzOutcome::Exhausted { trials } => {
            println!("fuzzer:  nothing in {trials} trials (unlucky seed)")
        }
    }
    let t = Instant::now();
    let report = formal(Defense::None, 120, 12);
    println!(
        "formal:  {} in {:.2}s (exhaustive over all programs to the bound)",
        report.cell(),
        t.elapsed().as_secs_f64()
    );

    println!();
    println!("== secure SimpleOoO-S (Delay-spectre), sandboxing ==");
    let t = Instant::now();
    match fuzz_design(
        &secure,
        &FuzzOptions {
            trials: 1500,
            ..Default::default()
        },
    ) {
        FuzzOutcome::Exhausted { trials } => println!(
            "fuzzer:  no leak in {trials} trials / {:.2}s — *not* a proof",
            t.elapsed().as_secs_f64()
        ),
        FuzzOutcome::Leak(f) => println!("fuzzer:  UNEXPECTED leak: {f:?}"),
    }
    let t = Instant::now();
    let report = formal(Defense::DelaySpectre, 60, 8);
    println!(
        "formal:  {} in {:.2}s (exhaustive to depth 8; full proofs need\n\
         \u{20}        hours-scale budgets, see EXPERIMENTS.md)",
        report.cell(),
        t.elapsed().as_secs_f64()
    );
}

//! Fuzzing vs formal verification — the paper's §9 contrast between
//! model checking and fuzz-testing schemes (SpecDoctor, Revizor, …),
//! measured on the same leakage oracle.
//!
//! Both flows check the identical instrumented netlist: the fuzzer
//! simulates random program/secret pairs until the `no_leakage` assertion
//! fires; the model checker searches the whole program space symbolically.
//! On an insecure design both find the leak; on a secure design the fuzzer
//! can only ever say "no leak in N trials" while the formal flow can keep
//! pushing toward a proof.
//!
//! Fuzzing is a first-class backend now: `Verifier::fuzz(FuzzPlan)` adds
//! a 64-way bit-parallel fuzzing lane to the portfolio race, so the
//! third act below lets the fuzzer and the solvers compete for the same
//! verdict — whichever finds the attack first cancels the others.
//!
//! ```text
//! cargo run --release --example fuzz_vs_formal
//! ```

use std::time::{Duration, Instant};

use contract_shadow_logic::core::api::FuzzPlan;
use contract_shadow_logic::core::{run_fuzz, FuzzOutcome};
use contract_shadow_logic::prelude::*;
use contract_shadow_logic::sat::Budget;

fn main() {
    let instance = |defense: Defense| {
        Verifier::new()
            .design(DesignKind::SimpleOoo(defense))
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Shadow)
            .with_candidates(false)
            .query()
            .expect("design and contract are set")
    };
    let fuzz = |defense: Defense, plan: &FuzzPlan| {
        let query = instance(defense);
        let isa = query.config().cpu_config().isa;
        // Fuzz the raw instance directly (the portfolio lane would fuzz
        // the prepared one; both find the same leaks).
        run_fuzz(&query.raw_instance().aig, &isa, plan, &Budget::unlimited())
    };
    let formal = |defense: Defense, budget: u64, depth: usize| {
        Verifier::new()
            .design(DesignKind::SimpleOoo(defense))
            .contract(Contract::Sandboxing)
            .scheme(Scheme::Shadow)
            .wall(Duration::from_secs(budget))
            .bmc_depth(depth)
            .attack_only(true)
            .query()
            .expect("design and contract are set")
            .run()
    };

    println!("== insecure SimpleOoO, sandboxing ==");
    let report = fuzz(Defense::None, &FuzzPlan::default());
    match report.outcome {
        FuzzOutcome::Leak(f) => println!(
            "fuzzer:  leak after {} trials in {:.2}s (cycle {}, {:.0} trials/s batched)",
            f.trials,
            report.stats.wall.as_secs_f64(),
            f.cycle,
            report.stats.trials_per_sec(),
        ),
        FuzzOutcome::Exhausted { trials, .. } => {
            println!("fuzzer:  nothing in {trials} trials (unlucky seed)")
        }
    }
    let t = Instant::now();
    let report = formal(Defense::None, 120, 12);
    println!(
        "formal:  {} in {:.2}s (exhaustive over all programs to the bound)",
        report.cell(),
        t.elapsed().as_secs_f64()
    );

    println!();
    println!("== secure SimpleOoO-S (Delay-spectre), sandboxing ==");
    let report = fuzz(Defense::DelaySpectre, &FuzzPlan::default().trials(1500));
    match report.outcome {
        FuzzOutcome::Exhausted { trials, wall, .. } => println!(
            "fuzzer:  no leak in {trials} trials / {:.2}s — *not* a proof",
            wall.as_secs_f64()
        ),
        FuzzOutcome::Leak(f) => println!("fuzzer:  UNEXPECTED leak: {f:?}"),
    }
    let t = Instant::now();
    let report = formal(Defense::DelaySpectre, 60, 8);
    println!(
        "formal:  {} in {:.2}s (exhaustive to depth 8; full proofs need\n\
         \u{20}        hours-scale budgets, see EXPERIMENTS.md)",
        report.cell(),
        t.elapsed().as_secs_f64()
    );

    println!();
    println!("== fuzzing as a portfolio lane: fuzz races BMC on the insecure core ==");
    let report = Verifier::new()
        .design(DesignKind::SimpleOoo(Defense::None))
        .contract(Contract::Sandboxing)
        .scheme(Scheme::Shadow)
        .mode(Mode::Portfolio)
        .attack_only(true)
        .wall(Duration::from_secs(120))
        .bmc_depth(12)
        .fuzz(FuzzPlan::default().trials(100_000))
        .query()
        .expect("design and contract are set")
        .run();
    println!(
        "race:    {} in {:.2}s — first decisive lane cancels the rest",
        report.cell(),
        report.elapsed.as_secs_f64()
    );
    for note in report
        .notes
        .iter()
        .filter(|n| n.starts_with("fuzz") || n.starts_with("bmc"))
    {
        println!("    | {note}");
    }
    if let Some(fuzz) = &report.fuzz {
        println!(
            "    | fuzz lane: {} trials at {:.0} trials/s across {} lanes",
            fuzz.trials,
            fuzz.trials_per_sec(),
            fuzz.lanes
        );
    }
}

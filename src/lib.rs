//! # Contract Shadow Logic — RTL verification for secure speculation
//!
//! A full-system Rust reproduction of *"RTL Verification for Secure
//! Speculation Using Contract Shadow Logic"* (ASPLOS 2025,
//! arXiv:2407.12232): formal verification of software-hardware contracts
//! for secure speculation on out-of-order processors, built from scratch —
//! SAT solver, AIG netlist DSL, model-checking engines, processors,
//! defences, contracts and the shadow-logic methodology itself.
//!
//! This façade crate re-exports the workspace layers:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`sat`] | `csl-sat` | CDCL SAT solver (the decision procedure) |
//! | [`hdl`] | `csl-hdl` | word-level hardware DSL over an AIG netlist |
//! | [`mc`]  | `csl-mc`  | BMC / k-induction / Houdini / PDR engines |
//! | [`isa`] | `csl-isa` | MiniISA: encoding, assembler, interpreter |
//! | [`contracts`] | `csl-contracts` | sandboxing & constant-time contracts |
//! | [`cpu`] | `csl-cpu` | in-order, SimpleOoO (+5 defences), superscalar, BigOoO |
//! | [`core`] | `csl-core` | **the paper's contribution**: shadow logic + schemes |
//!
//! # Quickstart
//!
//! ```no_run
//! use contract_shadow_logic::prelude::*;
//! use std::time::Duration;
//!
//! // Hunt for speculative-execution attacks on the insecure SimpleOoO
//! // core under the sandboxing contract, with Contract Shadow Logic.
//! let cfg = InstanceConfig::new(
//!     DesignKind::SimpleOoo(Defense::None),
//!     Contract::Sandboxing,
//! );
//! let opts = CheckOptions {
//!     total_budget: Duration::from_secs(60),
//!     ..Default::default()
//! };
//! let report = verify(Scheme::Shadow, &cfg, &opts);
//! println!("verdict: {}", report.verdict.cell()); // "CEX": Spectre found
//! ```
//!
//! See `examples/` for runnable scenarios: `quickstart` (attack + proof),
//! `spectre_hunt` (the §7.1.4 iterative attack discovery on the BOOM
//! stand-in), and `defense_audit` (the §7.2 defence comparison).

pub use csl_contracts as contracts;
pub use csl_core as core;
pub use csl_cpu as cpu;
pub use csl_hdl as hdl;
pub use csl_isa as isa;
pub use csl_mc as mc;
pub use csl_sat as sat;

/// The commonly-needed types in one import.
pub mod prelude {
    pub use csl_contracts::Contract;
    pub use csl_core::{
        build_instance, matrix, run_campaign, verify, CampaignCell, CampaignOptions,
        CampaignReport, DesignKind, ExcludeRule, InstanceConfig, Scheme, ShadowOptions,
    };
    pub use csl_cpu::{CpuConfig, Defense};
    pub use csl_isa::IsaConfig;
    pub use csl_mc::{CheckOptions, CheckReport, ExecMode, ProofEngine, Verdict};
}

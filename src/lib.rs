//! # Contract Shadow Logic — RTL verification for secure speculation
//!
//! A full-system Rust reproduction of *"RTL Verification for Secure
//! Speculation Using Contract Shadow Logic"* (ASPLOS 2025,
//! arXiv:2407.12232): formal verification of software-hardware contracts
//! for secure speculation on out-of-order processors, built from scratch —
//! SAT solver, AIG netlist DSL, model-checking engines, processors,
//! defences, contracts and the shadow-logic methodology itself.
//!
//! This façade crate re-exports the workspace layers:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`sat`] | `csl-sat` | CDCL SAT solver (the decision procedure) |
//! | [`hdl`] | `csl-hdl` | word-level hardware DSL over an AIG netlist |
//! | [`mc`]  | `csl-mc`  | BMC / k-induction / Houdini / PDR engines |
//! | [`cover`] | `csl-cover` | coverage-guided fuzzing: toggle maps, mutation corpus, rejection filter |
//! | [`isa`] | `csl-isa` | MiniISA: encoding, assembler, interpreter |
//! | [`contracts`] | `csl-contracts` | sandboxing & constant-time contracts |
//! | [`cpu`] | `csl-cpu` | in-order, SimpleOoO (+5 defences), superscalar, BigOoO |
//! | [`certify`] | `csl-certify` | independent checking of proof certificates & attack witnesses |
//! | [`core`] | `csl-core` | **the paper's contribution**: shadow logic + schemes |
//! | [`serve`] | `csl-serve` | campaign daemon: wire protocol, worker processes, dedup, resume |
//! | [`synth`] | `csl-synth` | CEGIS contract synthesis over the observation-set lattice |
//!
//! # Quickstart
//!
//! ```no_run
//! use contract_shadow_logic::prelude::*;
//! use std::time::Duration;
//!
//! // Hunt for speculative-execution attacks on the insecure SimpleOoO
//! // core under the sandboxing contract, with Contract Shadow Logic.
//! let report = Verifier::new()
//!     .design(DesignKind::SimpleOoo(Defense::None))
//!     .contract(Contract::Sandboxing)
//!     .scheme(Scheme::Shadow)
//!     .wall(Duration::from_secs(60))
//!     .query()
//!     .unwrap()
//!     .run();
//! println!("verdict: {}", report.cell()); // "CEX": Spectre found
//! std::fs::write("report.json", report.to_json()).unwrap(); // persist it
//! ```
//!
//! See `examples/` for runnable scenarios: `quickstart` (attack + proof),
//! `spectre_hunt` (the §7.1.4 iterative attack discovery on the BOOM
//! stand-in), and `defense_audit` (the §7.2 defence comparison).

pub use csl_certify as certify;
pub use csl_contracts as contracts;
pub use csl_core as core;
pub use csl_cover as cover;
pub use csl_cpu as cpu;
pub use csl_hdl as hdl;
pub use csl_isa as isa;
pub use csl_mc as mc;
pub use csl_sat as sat;
pub use csl_serve as serve;
pub use csl_synth as synth;

/// The commonly-needed types in one import: the [`csl_core::api`]
/// session types plus the enums and configs they consume.
pub mod prelude {
    pub use csl_certify::{check_certificate, check_witness, Rejection, Witness};
    pub use csl_contracts::{Contract, ObsAtom, ObsSet};
    pub use csl_core::api::{
        Budget, CampaignDiff, CampaignReport, CoverageStats, ExchangeConfig, ExchangeStats,
        FuzzPlan, FuzzStats, Lane, LaneBudget, LaneExchange, Matrix, Mode, PrepareConfig,
        PreparedInstance, Query, Report, ReportCache, Verifier,
    };
    pub use csl_core::{
        matrix, CampaignCell, DesignKind, ExcludeRule, InstanceConfig, Scheme, ShadowOptions,
    };
    pub use csl_cpu::{CpuConfig, Defense};
    pub use csl_isa::IsaConfig;
    pub use csl_mc::{
        CertKind, Certificate, CheckOptions, CheckReport, ExecMode, InconclusiveReason,
        ProofEngine, Verdict,
    };
    pub use csl_serve::{CellSpec, Client, Daemon, DaemonConfig, ServeAddr, ServeOptions};
    pub use csl_synth::{SynthOutcome, SynthPhase, SynthStep, SynthesisResult, Synthesizer};
}

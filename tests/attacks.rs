//! End-to-end integration tests: the Contract Shadow Logic scheme finds
//! the paper's attacks on insecure designs, and never reports a false
//! attack on secure designs. Every counterexample is replayed on the
//! concrete simulator by the engine before being reported.
//!
//! The tests adapt to the build profile: under `--release` they insist the
//! attacks are found at full depth; under the default debug profile (where
//! the SAT substrate is an order of magnitude slower) they run shallower
//! searches and only enforce soundness (no false attacks, no bogus
//! proofs). Run `cargo test --release --test attacks` for the strong form.

use std::time::Duration;

use contract_shadow_logic::prelude::*;

fn fast() -> bool {
    cfg!(debug_assertions)
}

fn hunter(cfg: &InstanceConfig, scheme: Scheme, depth: usize, secs: u64) -> Report {
    Verifier::new()
        .design(cfg.design)
        .contract(cfg.contract)
        .scheme(scheme)
        .excludes(&cfg.excludes)
        .wall(Duration::from_secs(secs))
        .bmc_depth(if fast() { depth.min(7) } else { depth })
        .attack_only(true)
        .query()
        .expect("design and contract are set")
        .run()
}

/// Insecure design: an attack must be found (release), or at minimum any
/// verdict returned must be a *validated* attack (debug, shallow search).
fn expect_attack(cfg: &InstanceConfig, scheme: Scheme, depth: usize, secs: u64) {
    let report = hunter(cfg, scheme, depth, secs);
    match &report.verdict {
        Verdict::Attack(trace) => {
            assert!(trace.bad_name.contains("no_leakage"), "{}", trace.bad_name);
        }
        other => {
            assert!(
                fast(),
                "expected attack in release mode, got {other:?} ({:?})",
                report.notes
            );
        }
    }
}

/// Secure design: no attack may surface, ever.
fn expect_no_attack(cfg: &InstanceConfig, depth: usize, secs: u64) {
    let report = hunter(cfg, Scheme::Shadow, depth, secs);
    assert!(
        !report.verdict.is_attack(),
        "FALSE ATTACK on secure design: {:?} ({:?})",
        report.verdict,
        report.notes
    );
}

#[test]
fn spectre_attack_on_insecure_simple_ooo_sandboxing() {
    let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    expect_attack(&cfg, Scheme::Shadow, 10, 300);
}

#[test]
fn spectre_attack_on_insecure_simple_ooo_constant_time() {
    let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::ConstantTime);
    expect_attack(&cfg, Scheme::Shadow, 10, 300);
}

#[test]
fn baseline_finds_the_same_attack() {
    let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::None), Contract::Sandboxing);
    expect_attack(&cfg, Scheme::Baseline, 10, 300);
}

#[test]
fn nofwd_futuristic_leaks_under_constant_time() {
    let cfg = InstanceConfig::new(
        DesignKind::SimpleOoo(Defense::NoFwdFuturistic),
        Contract::ConstantTime,
    );
    expect_attack(&cfg, Scheme::Shadow, 10, 300);
}

#[test]
fn nofwd_spectre_leaks_under_constant_time() {
    let cfg = InstanceConfig::new(
        DesignKind::SimpleOoo(Defense::NoFwdSpectre),
        Contract::ConstantTime,
    );
    expect_attack(&cfg, Scheme::Shadow, 10, 300);
}

#[test]
fn nofwd_futuristic_clean_under_sandboxing() {
    let cfg = InstanceConfig::new(
        DesignKind::SimpleOoo(Defense::NoFwdFuturistic),
        Contract::Sandboxing,
    );
    expect_no_attack(&cfg, 8, 120);
}

#[test]
fn delay_spectre_clean_both_contracts() {
    for contract in Contract::ALL {
        let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::DelaySpectre), contract);
        expect_no_attack(&cfg, 8, 120);
    }
}

#[test]
fn delay_futuristic_clean_both_contracts() {
    for contract in Contract::ALL {
        let cfg = InstanceConfig::new(DesignKind::SimpleOoo(Defense::DelayFuturistic), contract);
        expect_no_attack(&cfg, 8, 120);
    }
}

#[test]
fn inorder_clean_within_bound() {
    let cfg = InstanceConfig::new(DesignKind::InOrder, Contract::Sandboxing);
    expect_no_attack(&cfg, 8, 120);
}

#[test]
fn big_ooo_exception_attack_found() {
    let cfg = InstanceConfig::new(DesignKind::BigOoo, Contract::Sandboxing);
    expect_attack(&cfg, Scheme::Shadow, 10, 600);
}

#[test]
fn big_ooo_all_sources_excluded_is_clean() {
    let mut cfg = InstanceConfig::new(DesignKind::BigOoo, Contract::Sandboxing);
    cfg.excludes = vec![
        ExcludeRule::MisalignedAccesses,
        ExcludeRule::IllegalAccesses,
        ExcludeRule::TakenBranches,
    ];
    expect_no_attack(&cfg, 7, 300);
}

#[test]
fn superscalar_attack_found() {
    let cfg = InstanceConfig::new(DesignKind::SuperOoo, Contract::Sandboxing);
    expect_attack(&cfg, Scheme::Shadow, 9, 600);
}
